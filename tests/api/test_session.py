"""Session tests: declarative dispatch, batching, and cross-call cache reuse."""

import pytest

from repro.api import (
    CheckRequest,
    CompareRequest,
    ExploreRequest,
    OutcomesRequest,
    Session,
)
from repro.checker.outcomes import OutcomeSet
from repro.checker.result import CheckResult
from repro.comparison.compare import ComparisonResult, Relation
from repro.comparison.exploration import ExplorationResult

KNOWN = ("M1010", "M1044", "M4044", "M4144", "M4444")


def test_check_request_resolves_names():
    session = Session()
    result = session.run(CheckRequest(test="A", model="TSO"))
    assert isinstance(result, CheckResult)
    assert result.allowed and result.test_name == "A" and result.model_name == "TSO"
    assert not session.run(CheckRequest(test="A", model="SC")).allowed


def test_check_request_with_witness():
    session = Session()
    result = session.run(CheckRequest(test="A", model="TSO", witness=True))
    assert result.witness is not None
    forbidden = session.run(CheckRequest(test="A", model="SC", witness=True))
    assert forbidden.witness is None


def test_compare_request():
    session = Session()
    result = session.run(CompareRequest(first="TSO", second="x86", suite="no_deps"))
    assert isinstance(result, ComparisonResult)
    assert result.relation is Relation.EQUIVALENT
    stronger = session.run(CompareRequest(first="SC", second="M4044", suite="no_deps"))
    assert stronger.relation is Relation.STRONGER


def test_explore_request_over_explicit_models():
    session = Session()
    result = session.run(ExploreRequest(models=KNOWN, suite="no_deps"))
    assert isinstance(result, ExplorationResult)
    assert result.strongest_models() == ["M4444"]
    assert {model.name for model in result.models} == set(KNOWN)


def test_outcomes_request():
    session = Session()
    result = session.run(OutcomesRequest(test="L7", model="SC"))
    assert isinstance(result, OutcomeSet)
    assert result.model_name == "SC" and result.test_name == "L7"
    assert len(result) == 3  # store buffering: SC forbids exactly r1=0 & r2=0
    tso = session.run(OutcomesRequest(test="L7", model="TSO"))
    assert len(tso) == 4


# ----------------------------------------------------------------------
# cache reuse across calls (the point of a session)
# ----------------------------------------------------------------------
def test_reused_session_gets_engine_cache_hits_across_runs():
    session = Session()
    compare = session.run(CompareRequest(first="SC", second="TSO", suite="no_deps"))

    before = session.stats.snapshot()
    explore = session.run(ExploreRequest(space="no_deps"))
    delta = session.stats.since(before)

    # The compare already evaluated every suite test's execution; the
    # exploration must answer all of them from the shared context cache.
    assert delta.context_cache_hits > 0
    assert delta.executions_evaluated == 0

    # Results are identical to what fresh sessions compute.
    fresh_compare = Session().run(CompareRequest(first="SC", second="TSO", suite="no_deps"))
    fresh_explore = Session().run(ExploreRequest(space="no_deps"))
    assert compare == fresh_compare
    assert explore.vectors == fresh_explore.vectors
    assert explore.equivalence_classes == fresh_explore.equivalence_classes
    assert explore.hasse_edges == fresh_explore.hasse_edges


def test_check_compare_explore_in_one_session_share_caches():
    session = Session()
    session.run(CheckRequest(test="L1", model="TSO"))
    session.run(CompareRequest(first="SC", second="TSO", suite="no_deps"))
    before = session.stats.snapshot()
    session.run(ExploreRequest(space="no_deps"))
    assert session.stats.since(before).context_cache_hits > 0
    # hit counters grow monotonically across the whole conversation
    assert session.stats.context_cache_hits > session.stats.executions_evaluated


def test_repeated_compare_requests_reuse_verdict_vectors():
    session = Session()
    first = session.run(CompareRequest(first="SC", second="TSO", suite="no_deps"))
    before = session.stats.snapshot()
    second = session.run(CompareRequest(first="SC", second="TSO", suite="no_deps"))
    # The comparator memoizes whole verdict vectors: no new checks at all.
    assert session.stats.since(before).checks_performed == 0
    assert first == second


# ----------------------------------------------------------------------
# batches
# ----------------------------------------------------------------------
def test_run_batch_shares_contexts_and_reports_aggregate_stats():
    session = Session()
    batch = session.run_batch(
        [
            CheckRequest(test="A", model="TSO"),
            CheckRequest(test="A", model="SC"),
            CompareRequest(first="TSO", second="x86", suite="no_deps"),
        ]
    )
    assert len(batch) == 3
    assert batch[0].allowed and not batch[1].allowed
    assert batch[2].equivalent
    # The second check reuses the first check's context.
    assert batch.stats.context_cache_hits > 0
    assert batch.stats.checks_performed >= 2
    # The aggregate equals the sum of the per-request deltas by construction;
    # the batch's counters must not exceed the session's cumulative counters.
    assert batch.stats.checks_performed <= session.stats.checks_performed


def test_batch_results_match_individual_runs():
    batch = Session().run_batch(
        [
            CheckRequest(test="L1", model="PSO"),
            OutcomesRequest(test="L7", model="TSO"),
        ]
    )
    individual_check = Session().run(CheckRequest(test="L1", model="PSO"))
    individual_outcomes = Session().run(OutcomesRequest(test="L7", model="TSO"))
    assert batch[0] == individual_check
    assert batch[1] == individual_outcomes


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------
def test_sat_backend_session_agrees_with_explicit():
    explicit = Session(backend="explicit")
    sat = Session(backend="sat")
    request = ExploreRequest(models=KNOWN, suite="no_deps")
    explicit_result = explicit.run(request)
    sat_result = sat.run(request)
    assert explicit_result.vectors == sat_result.vectors
    assert sat.stats.solver_calls > 0


def test_unknown_request_type_is_rejected():
    with pytest.raises(TypeError):
        Session().run(object())


def test_registered_models_are_usable_in_requests():
    from repro.core.model import MemoryModel

    session = Session()
    session.models.register(MemoryModel("FencesOnly", "Fence(x) | Fence(y)"))
    result = session.run(CompareRequest(first="FencesOnly", second="SC", suite="no_deps"))
    assert result.relation is Relation.WEAKER
