"""Differential validation of the word-array kernel backends.

Every kernel backend (``bigint``, ``python``, and — when the C extension is
built — ``native``) must be *bit-identical*: same po-pair masks, same
verdicts, and the same :data:`~repro.checker.kernel.KernelWitness` (or
both ``None``) for every execution and model.  The hypothesis suite here
drives all available backends over random litmus tests and random
parametric models and asserts exact equality, and the word-level tests pin
the :class:`~repro.native.words.WordReachability` engine against the
bigint :class:`~repro.checker.kernel.ReachabilityKernel` at the 64-bit
word boundaries (n = 63, 64, 65) where packing bugs live.

The suite is deliberately runnable without the C extension — the native
backend joins the differential automatically when importable, so the
``REPRO_KERNEL=python`` CI leg still proves python vs bigint identity.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings

from repro.checker.kernel import IndexedExecution, KernelSearch, ReachabilityKernel
from repro.compile import compile_model
from repro.native.backend import native_available, resolve_kernel
from repro.native.problem import kernel_problem
from repro.native.words import WORD_BITS, WordReachability, word_count
from repro.native.wordsearch import word_search

from tests.conftest import parametric_models, small_litmus_tests

#: Every backend available in this environment, bigint first (the reference).
BACKENDS = [resolve_kernel("bigint"), resolve_kernel("python")]
if native_available():
    BACKENDS.append(resolve_kernel("native"))

_SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


# ----------------------------------------------------------------------
# full-backend differential: masks, witnesses, verdicts
# ----------------------------------------------------------------------
@_SETTINGS
@given(test=small_litmus_tests(), model=parametric_models())
def test_all_backends_compute_identical_masks(test, model):
    memory_model = model.to_memory_model()
    execution = test.execution()
    compiled = compile_model(memory_model)
    reference = None
    for backend in BACKENDS:
        # A fresh IndexedExecution per backend: no shared mask caches, so
        # each backend's evaluator actually runs.
        indexed = IndexedExecution(execution)
        mask = backend.po_pair_mask(indexed, compiled)
        if reference is None:
            reference = mask
        else:
            assert mask == reference, backend.name


@_SETTINGS
@given(test=small_litmus_tests(), model=parametric_models())
def test_all_backends_return_identical_witnesses(test, model):
    memory_model = model.to_memory_model()
    execution = test.execution()
    indexed = IndexedExecution(execution)
    if indexed.infeasible:
        return
    po_edges = indexed.po_edge_pairs(memory_model)
    reference = KernelSearch(indexed, po_edges).run()
    for backend in BACKENDS:
        witness = backend.search(IndexedExecution(execution), po_edges)
        assert witness == reference, backend.name


@_SETTINGS
@given(test=small_litmus_tests(), model=parametric_models())
def test_all_backends_agree_on_verdicts(test, model):
    memory_model = model.to_memory_model()
    execution = test.execution()
    indexed = IndexedExecution(execution)
    if indexed.infeasible:
        verdicts = {
            backend.name: backend.search(IndexedExecution(execution), []) is None
            for backend in BACKENDS
        }
        # Infeasible executions never have a witness on any backend.
        assert all(verdicts.values()), verdicts
        return
    po_edges = indexed.po_edge_pairs(memory_model)
    reference = None
    for backend in BACKENDS:
        allowed = backend.allowed(IndexedExecution(execution), po_edges)
        if reference is None:
            reference = allowed
        else:
            assert allowed == reference, backend.name


# ----------------------------------------------------------------------
# word-boundary reachability differential (n = 63, 64, 65)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n", [5, 63, 64, 65])
def test_word_reachability_matches_bigint_kernel(n):
    """Random edge insertions with interleaved undo, compared row by row."""
    rng = random.Random(64 * n)
    words = WordReachability(n)
    bigint = ReachabilityKernel(n)
    marks = []
    for step in range(300):
        if marks and rng.random() < 0.2:
            word_mark, bigint_mark = marks.pop(rng.randrange(len(marks)))
            words.undo_to(word_mark)
            bigint.undo_to(bigint_mark)
        else:
            u, v = rng.randrange(n), rng.randrange(n)
            if rng.random() < 0.3:
                marks.append((words.mark(), bigint.mark()))
            assert words.add_edge(u, v) == bigint.add_edge(u, v), (step, u, v)
    for i in range(n):
        assert words.row(i) == bigint.reach[i], i
    for u in (0, n - 1, n // 2):
        for v in (0, n - 1, n // 2):
            assert words.has_path(u, v) == bigint.has_path(u, v)


@pytest.mark.parametrize("n", [63, 64, 65])
def test_word_reachability_undo_is_exact(n):
    """Undo must restore the word array byte-for-byte, not just semantically."""
    rng = random.Random(n)
    kernel = WordReachability(n)
    for _ in range(50):
        kernel.add_edge(rng.randrange(n), rng.randrange(n))
    snapshot = bytes(kernel.reach)
    mark = kernel.mark()
    for _ in range(100):
        kernel.add_edge(rng.randrange(n), rng.randrange(n))
    kernel.undo_to(mark)
    assert bytes(kernel.reach) == snapshot
    kernel.undo_to(0)
    assert all(word == 0 for word in kernel.reach)


def test_word_count_covers_boundaries():
    assert word_count(0) == 1  # never a zero-length buffer
    assert word_count(1) == 1
    assert word_count(WORD_BITS) == 1
    assert word_count(WORD_BITS + 1) == 2
    assert word_count(2 * WORD_BITS) == 2
    assert word_count(2 * WORD_BITS + 1) == 3


def test_transitive_chain_crosses_word_boundary():
    """A path threaded through bits 62..66 exercises cross-word propagation."""
    n = 70
    kernel = WordReachability(n)
    bigint = ReachabilityKernel(n)
    chain = list(range(60, 70)) + [0]
    for u, v in zip(chain, chain[1:]):
        assert kernel.add_edge(u, v)
        assert bigint.add_edge(u, v)
    assert kernel.has_path(60, 0) and bigint.has_path(60, 0)
    # Closing the cycle must be rejected by both without mutating state.
    before = bytes(kernel.reach)
    assert not kernel.add_edge(0, 60)
    assert not bigint.add_edge(0, 60)
    assert bytes(kernel.reach) == before


# ----------------------------------------------------------------------
# word_search is the executable spec of the C search
# ----------------------------------------------------------------------
def test_word_search_matches_kernel_search_on_named_tests():
    from repro.core.parametric import model_space
    from repro.generation.named_tests import L_TESTS, TEST_A

    models = model_space(include_data_dependencies=False)[:12]
    for test in [TEST_A] + list(L_TESTS):
        execution = test.execution()
        indexed = IndexedExecution(execution)
        if indexed.infeasible:
            continue
        for model in models:
            po_edges = indexed.po_edge_pairs(model)
            expected = KernelSearch(indexed, po_edges).run()
            problem = kernel_problem(IndexedExecution(execution))
            assert word_search(problem, po_edges) == expected


@pytest.mark.skipif(not native_available(), reason="C extension not built")
def test_native_backend_reports_native():
    import os

    backend = resolve_kernel("native")
    assert backend.name == "native"
    assert backend.is_native
    auto = resolve_kernel("auto")
    if "REPRO_KERNEL" in os.environ:
        # auto honours the env override (e.g. the CI pure-Python leg)
        assert auto.name == os.environ["REPRO_KERNEL"]
    else:
        assert auto.name == "native"  # auto prefers the extension when built


# ----------------------------------------------------------------------
# batched C atom masks vs the Python per-node path
# ----------------------------------------------------------------------
@pytest.mark.skipif(not native_available(), reason="C extension not built")
@_SETTINGS
@given(test=small_litmus_tests(), model=parametric_models())
def test_batched_atom_masks_match_python_path(test, model):
    """`atom_words_list` (one C call for builtin atoms) must be bit-identical
    to `atom_words` (per-node Python masks), cold and warm."""
    from repro.native.flatprog import flat_program

    compiled = compile_model(model.to_memory_model())
    program = flat_program(compiled.root)
    execution = test.execution()

    reference_problem = kernel_problem(IndexedExecution(execution))
    reference = [reference_problem.atom_words(node) for node in program.atoms]

    problem = kernel_problem(IndexedExecution(execution))
    assert problem.atom_words_list(program.atoms) == reference  # cold batch
    assert problem.atom_words_list(program.atoms) == reference  # fully cached
