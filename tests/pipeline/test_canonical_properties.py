"""Property-based soundness of the symmetry reduction.

The pipeline's whole premise is that checking one canonical representative
per symmetry class loses nothing: every model of the paper's class must
give the representative exactly the verdicts of the original test.  These
properties drive random tests (and random symmetry transformations of
them) through all three engine backends.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.instructions import Fence, Load, Store
from repro.core.litmus import LitmusTest
from repro.core.parametric import parametric_model
from repro.core.program import Program, Thread
from repro.engine.engine import CheckEngine
from repro.pipeline.canonical import abstract_test, canonical_key, canonicalize

from tests.conftest import small_litmus_tests

_SETTINGS = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

#: A spread of the parametric space: SC, TSO, PSO, RMO-like and mixtures.
MODELS = [
    parametric_model(name) for name in ("M4444", "M4044", "M1044", "M1010", "M4140")
]

#: One persistent engine per backend; columns are evicted after each check,
#: so reuse across examples is safe and keeps the suite fast.
ENGINES = {backend: CheckEngine(backend) for backend in ("explicit", "enumeration", "sat")}


@_SETTINGS
@given(test=small_litmus_tests())
def test_representative_verdicts_match_original_on_every_backend(test):
    representative = canonicalize(test)
    representative.program.validate()
    for backend, engine in ENGINES.items():
        original_column = engine.check_column(test, MODELS)
        representative_column = engine.check_column(representative, MODELS)
        assert original_column == representative_column, backend


def _apply_symmetry(test, draw):
    """Rebuild the test under a random symmetry transformation."""
    items_per_thread = list(abstract_test(test))
    # Thread permutation.
    if draw(st.booleans()):
        items_per_thread.reverse()
    # Location renaming (a bijection on the names actually used).
    locations = sorted({item[1] for items in items_per_thread for item in items if item[0] != "F"})
    renamed = draw(st.permutations(locations)) if locations else []
    location_map = dict(zip(locations, renamed))
    # Per-location value renaming fixing 0 (bijection on 1..3).
    value_maps = {
        location: dict(zip((1, 2, 3), draw(st.permutations((1, 2, 3)))))
        for location in locations
    }

    threads = []
    read_values = {}
    for thread_index, items in enumerate(items_per_thread):
        instructions = []
        serial = 0
        for item in items:
            kind = item[0]
            if kind == "F":
                instructions.append(Fence(str(item[1])))
                continue
            location = location_map[item[1]]
            value = item[2] if item[2] == 0 else value_maps[item[1]][item[2]]
            if kind == "R":
                register = f"q{thread_index + 1}{serial}"
                serial += 1
                instructions.append(Load(register, location))
                read_values[(thread_index, len(instructions) - 1)] = value
            else:
                instructions.append(Store(location, value))
        threads.append(Thread(f"T{thread_index + 1}", instructions))
    return LitmusTest("transformed", Program(threads), read_values)


@_SETTINGS
@given(test=small_litmus_tests(), data=st.data())
def test_canonical_key_is_invariant_under_symmetry(test, data):
    transformed = _apply_symmetry(test, data.draw)
    assert canonical_key(transformed) == canonical_key(test)


@_SETTINGS
@given(test=small_litmus_tests(), data=st.data())
def test_transformed_tests_keep_their_verdicts(test, data):
    """The symmetry group really is verdict-preserving, member by member."""
    transformed = _apply_symmetry(test, data.draw)
    engine = ENGINES["explicit"]
    assert engine.check_column(test, MODELS) == engine.check_column(transformed, MODELS)


@_SETTINGS
@given(test=small_litmus_tests())
def test_canonicalize_idempotent(test):
    representative = canonicalize(test)
    assert canonical_key(representative) == canonical_key(test)
    again = canonicalize(representative)
    assert again.program == representative.program
    assert again.outcome == representative.outcome
