"""Integration tests for the sharded, resumable verification pipeline."""

import json
import os

import pytest

from repro.api.requests import ExhaustiveRequest, request_from_json, request_to_json
from repro.api.serialize import from_json, to_json
from repro.api.session import Session
from repro.comparison.exploration import explore_models
from repro.core.parametric import model_space
from repro.generation.named_tests import L_TESTS
from repro.pipeline.report import EquivalenceReport, PartitionAccumulator
from repro.pipeline.run import (
    PipelineConfig,
    PipelineError,
    _template_suite,
    run_pipeline,
)

TINY = dict(bound="tiny", space="no_deps", shard_size=64)


@pytest.fixture(scope="module")
def tiny_report():
    return run_pipeline(PipelineConfig(**TINY))


# ----------------------------------------------------------------------
# the partition accumulator against the exploration reference
# ----------------------------------------------------------------------
def test_accumulator_reproduces_exploration_partition():
    models = model_space(include_data_dependencies=False)
    suite = list(L_TESTS)
    exploration = explore_models(models, suite)
    accumulator = PartitionAccumulator([model.name for model in models])
    for index, _test in enumerate(suite):
        accumulator.fold_bools(
            [exploration.vectors[model.name][index] for model in models]
        )
    assert accumulator.equivalence_classes() == exploration.equivalence_classes
    assert accumulator.hasse_edges() == sorted(
        (edge.weaker, edge.stronger) for edge in exploration.hasse_edges
    )


def test_accumulator_merge_equals_single_fold():
    names = ["A", "B", "C"]
    rows = [0b011, 0b101, 0b110, 0b001]
    whole = PartitionAccumulator(names)
    first, second = PartitionAccumulator(names), PartitionAccumulator(names)
    for row in rows:
        whole.fold_row(row)
    for row in rows[:2]:
        first.fold_row(row)
    for row in rows[2:]:
        second.fold_row(row)
    first.merge(second)
    assert first.distinguished == whole.distinguished
    assert first.tests_folded == whole.tests_folded
    with pytest.raises(ValueError):
        first.merge(PartitionAccumulator(["A", "B"]))


# ----------------------------------------------------------------------
# the pipeline itself
# ----------------------------------------------------------------------
def test_tiny_pipeline_counts_are_consistent(tiny_report):
    report = tiny_report
    assert report.raw_tests > report.unique_tests > 0
    assert report.checks_performed == report.unique_tests * len(report.model_names)
    assert report.shards_total == report.shards_checked
    assert report.shards_resumed == 0
    assert report.stats.checks_performed == report.checks_performed
    assert report.elapsed_seconds > 0
    assert report.reduction_factor() > 1.5


def test_tiny_pipeline_template_partition_matches_explore(tiny_report):
    models = model_space(include_data_dependencies=False)
    exploration = explore_models(models, _template_suite("no_deps"))
    assert tiny_report.template_classes == exploration.equivalence_classes
    assert sorted(tiny_report.template_hasse_edges) == sorted(
        (edge.weaker, edge.stronger) for edge in exploration.hasse_edges
    )


def test_tiny_bound_is_too_coarse_but_refines_nothing_wrongly(tiny_report):
    """A naive space smaller than the template suite's reach may merge
    template classes but must never split one (the template suite
    distinguishes at least as much as any subset of bounded programs)."""
    report = tiny_report
    assert not report.matches_template
    template_class_of = {
        name: cls for cls in report.template_classes for name in cls
    }
    for naive_class in report.equivalence_classes:
        for name in naive_class:
            assert set(template_class_of[name]) <= set(naive_class)


def test_limit_caps_unique_tests():
    report = run_pipeline(PipelineConfig(bound="tiny", limit=50, shard_size=16))
    assert report.unique_tests == 50
    assert report.shards_total == 4  # 16 + 16 + 16 + 2


def test_parallel_jobs_match_serial():
    serial = run_pipeline(PipelineConfig(**TINY))
    parallel = run_pipeline(PipelineConfig(**dict(TINY, jobs=2)))
    assert parallel.equivalence_classes == serial.equivalence_classes
    assert parallel.hasse_edges == serial.hasse_edges
    assert parallel.unique_tests == serial.unique_tests
    assert parallel.checks_performed == serial.checks_performed


def test_config_validation():
    with pytest.raises(PipelineError):
        PipelineConfig(bound="nonsense")
    with pytest.raises(PipelineError):
        PipelineConfig(space="sideways")
    with pytest.raises(PipelineError):
        PipelineConfig(jobs=0)
    with pytest.raises(PipelineError):
        PipelineConfig(shard_size=0)
    with pytest.raises(PipelineError):
        PipelineConfig(resume=True)  # resume needs a run_dir


# ----------------------------------------------------------------------
# checkpointing and resume
# ----------------------------------------------------------------------
class _Killed(Exception):
    pass


def _kill_after(shard_index):
    def progress(event, payload):
        if event == "shard" and payload["shard"] == shard_index:
            raise _Killed()

    return progress


def test_kill_and_resume_round_trip(tmp_path, tiny_report):
    run_dir = str(tmp_path / "run")
    config = PipelineConfig(**TINY, run_dir=run_dir)
    with pytest.raises(_Killed):
        run_pipeline(config, progress=_kill_after(1))
    # Shards 0 and 1 are checkpointed; the kill lost nothing committed.
    assert sorted(os.listdir(os.path.join(run_dir, "shards"))) == [
        "shard-00000.jsonl",
        "shard-00001.jsonl",
    ]

    resumed = run_pipeline(PipelineConfig(**TINY, run_dir=run_dir, resume=True))
    assert resumed.shards_resumed == 2
    assert resumed.shards_checked == resumed.shards_total - 2
    # Completed shards were answered from disk: only the rest was checked.
    expected_checked = resumed.unique_tests - 2 * 64
    assert resumed.checks_performed == expected_checked * len(resumed.model_names)
    # And the result is identical to an uninterrupted run.
    assert resumed.equivalence_classes == tiny_report.equivalence_classes
    assert resumed.hasse_edges == tiny_report.hasse_edges
    assert resumed.unique_tests == tiny_report.unique_tests


def test_full_resume_rechecks_nothing(tmp_path, tiny_report):
    run_dir = str(tmp_path / "run")
    run_pipeline(PipelineConfig(**TINY, run_dir=run_dir))
    resumed = run_pipeline(PipelineConfig(**TINY, run_dir=run_dir, resume=True))
    assert resumed.shards_checked == 0
    assert resumed.checks_performed == 0
    assert resumed.shards_resumed == resumed.shards_total
    assert resumed.equivalence_classes == tiny_report.equivalence_classes


def test_corrupted_shard_is_rechecked(tmp_path, tiny_report):
    run_dir = str(tmp_path / "run")
    run_pipeline(PipelineConfig(**TINY, run_dir=run_dir))
    shard_path = os.path.join(run_dir, "shards", "shard-00001.jsonl")
    with open(shard_path) as handle:
        lines = handle.readlines()
    with open(shard_path, "w") as handle:
        handle.writelines(lines[:-2])  # drop a row and the done marker
    resumed = run_pipeline(PipelineConfig(**TINY, run_dir=run_dir, resume=True))
    assert resumed.shards_checked == 1
    assert resumed.shards_resumed == resumed.shards_total - 1
    assert resumed.equivalence_classes == tiny_report.equivalence_classes


def test_resume_rejects_a_different_configuration(tmp_path):
    run_dir = str(tmp_path / "run")
    run_pipeline(PipelineConfig(**TINY, run_dir=run_dir))
    with pytest.raises(PipelineError, match="different run"):
        run_pipeline(
            PipelineConfig(bound="small", space="no_deps", shard_size=64,
                           run_dir=run_dir, resume=True)
        )


def test_shard_files_are_json_lines_with_digests(tmp_path):
    run_dir = str(tmp_path / "run")
    report = run_pipeline(PipelineConfig(bound="tiny", shard_size=1000, run_dir=run_dir))
    with open(os.path.join(run_dir, "shards", "shard-00000.jsonl")) as handle:
        lines = [json.loads(line) for line in handle]
    assert lines[-1] == {"done": True, "tests": report.unique_tests}
    for row in lines[:-1]:
        assert set(row) == {"test", "key", "verdicts"}
        assert len(row["verdicts"]) == len(report.model_names)
        assert set(row["verdicts"]) <= {"0", "1"}
        int(row["key"], 16)
    manifest = json.load(open(os.path.join(run_dir, "manifest.json")))
    assert manifest["schema"] == "repro/exhaustive_manifest"
    assert manifest["model_names"] == report.model_names


# ----------------------------------------------------------------------
# the API surface
# ----------------------------------------------------------------------
def test_session_runs_exhaustive_requests(tiny_report):
    session = Session()
    report = session.run(ExhaustiveRequest(bound="tiny", shard_size=64))
    assert isinstance(report, EquivalenceReport)
    assert report.equivalence_classes == tiny_report.equivalence_classes
    # The session's engine did the work (template suite contexts are warm).
    assert session.stats.checks_performed >= report.checks_performed


def test_path_restricted_session_rejects_run_dir(tmp_path):
    session = Session()
    session.tests.allow_paths = False  # what serve --port does
    with pytest.raises(ValueError, match="run_dir"):
        session.run(ExhaustiveRequest(bound="tiny", run_dir=str(tmp_path)))


def test_exhaustive_request_round_trips_as_json():
    request = ExhaustiveRequest(bound="tiny", jobs=2, limit=10, resume=False)
    document = request_to_json(request)
    assert document["op"] == "exhaustive"
    assert request_from_json(json.loads(json.dumps(document))) == request


def test_equivalence_report_round_trips_as_json(tiny_report):
    document = tiny_report.to_json()
    assert document["schema"] == "repro/equivalence_report"
    rebuilt = EquivalenceReport.from_json(json.loads(json.dumps(document)))
    assert rebuilt == tiny_report
    assert to_json(rebuilt) == document
    assert from_json(document) == tiny_report


def test_describe_mentions_the_verdict(tiny_report):
    text = tiny_report.describe()
    assert "DISAGREE" in text
    assert str(tiny_report.unique_tests) in text
