"""Fault-tolerance tests for the exhaustive-enumeration pipeline: killed
and hung workers, quarantine, torn checkpoints, and crash-resume."""

import json
import os
import signal
import subprocess
import sys

import pytest

from repro.pipeline.run import (
    PipelineConfig,
    PipelineError,
    _load_shard,
    _shard_path,
    run_pipeline,
)
from repro.util import faults

#: The smallest real configuration: 276 unique tests in 5 shards.
TINY = dict(bound="tiny", space="no_deps", shard_size=64)

#: Report fields that legitimately differ between a clean run and a
#: faulted/resumed run of the same configuration.
VOLATILE_FIELDS = {
    "elapsed_seconds",
    "stats",
    "shards_checked",
    "shards_resumed",
    "checks_performed",
}


@pytest.fixture(autouse=True)
def _isolate_faults():
    saved = faults.snapshot()
    faults.clear()
    yield
    faults.restore(saved)


@pytest.fixture(scope="module")
def clean_report():
    saved = faults.snapshot()
    faults.clear()
    try:
        return run_pipeline(PipelineConfig(**TINY))
    finally:
        faults.restore(saved)


def _essence(report):
    document = report.to_json()
    for field in VOLATILE_FIELDS:
        document.pop(field, None)
    return document


# ----------------------------------------------------------------------
# worker fault tolerance
# ----------------------------------------------------------------------
def test_sigkilled_worker_is_retried_on_a_fresh_worker(clean_report):
    """A worker SIGKILLed mid-shard costs one retry, not the run; the
    result is identical to the serial run, including the deterministic
    check counters (failed attempts contribute no stats)."""
    faults.install("pipeline.shard[shard=1,attempt=0]=kill")
    report = run_pipeline(PipelineConfig(jobs=2, **TINY))
    assert report.complete is True
    assert report.quarantined_shards == []
    assert report.equivalence_classes == clean_report.equivalence_classes
    assert report.hasse_edges == clean_report.hasse_edges
    assert report.unique_tests == clean_report.unique_tests
    assert report.checks_performed == clean_report.checks_performed


def test_worker_exception_is_retried(clean_report):
    faults.install("pipeline.shard[shard=2,attempt=0]=raise")
    report = run_pipeline(PipelineConfig(jobs=2, **TINY))
    assert report.complete is True
    assert report.equivalence_classes == clean_report.equivalence_classes
    assert report.checks_performed == clean_report.checks_performed


def test_hung_worker_is_killed_and_shard_retried(clean_report):
    """A worker stuck past shard_timeout is killed; the shard reruns on a
    fresh worker and the run finishes with identical results."""
    faults.install("pipeline.shard[shard=1,attempt=0]=delay:120")
    report = run_pipeline(PipelineConfig(jobs=2, shard_timeout=2.0, **TINY))
    assert report.complete is True
    assert report.equivalence_classes == clean_report.equivalence_classes
    assert report.checks_performed == clean_report.checks_performed


def test_repeatedly_failing_shard_is_quarantined(clean_report):
    """A shard that fails every attempt is quarantined: the run completes,
    reports itself incomplete, and names the shard."""
    faults.install("pipeline.shard[shard=0]=raise")  # unlimited count
    report = run_pipeline(PipelineConfig(jobs=2, shard_retries=1, **TINY))
    assert report.complete is False
    assert report.quarantined_shards == [0]
    assert report.shards_quarantined == 1
    assert report.shards_total == clean_report.shards_total
    assert report.shards_checked == clean_report.shards_total - 1
    assert report.unique_tests < clean_report.unique_tests
    assert "INCOMPLETE" in report.describe()
    assert str([0]) in report.describe()


def test_quarantine_is_recorded_in_the_manifest(tmp_path):
    run_dir = str(tmp_path / "run")
    faults.install("pipeline.shard[shard=0]=raise")
    report = run_pipeline(
        PipelineConfig(jobs=2, shard_retries=0, run_dir=run_dir, **TINY)
    )
    assert report.complete is False
    with open(os.path.join(run_dir, "manifest.json")) as handle:
        manifest = json.load(handle)
    assert manifest["quarantined"] == [0]
    # The quarantined shard has no checkpoint, so a resume re-checks
    # exactly it — and with the fault cleared, the run completes.
    faults.clear()
    resumed = run_pipeline(
        PipelineConfig(jobs=2, run_dir=run_dir, resume=True, **TINY)
    )
    assert resumed.complete is True
    assert resumed.shards_resumed == report.shards_checked


def test_incomplete_report_roundtrips_through_json(clean_report):
    faults.install("pipeline.shard[shard=0]=raise")
    report = run_pipeline(PipelineConfig(jobs=2, shard_retries=0, **TINY))
    from repro.pipeline.report import EquivalenceReport

    document = json.loads(json.dumps(report.to_json()))
    rebuilt = EquivalenceReport.from_json(document)
    assert rebuilt.complete is False
    assert rebuilt.quarantined_shards == [0]
    # Pre-fault-tolerance documents (no new fields) read as complete runs.
    for field in ("complete", "quarantined_shards", "shards_quarantined"):
        document.pop(field)
    legacy = EquivalenceReport.from_json(document)
    assert legacy.complete is True and legacy.quarantined_shards == []


def test_assert_match_flag_fails_incomplete_runs(tmp_path, monkeypatch, capsys):
    from repro.cli import main

    faults.install("pipeline.shard[shard=0]=raise")
    code = main(
        ["enumerate-verify", "--bound", "tiny", "--shard-size", "64",
         "--jobs", "2", "--shard-retries", "0", "--assert-match"]
    )
    assert code == 1
    assert "incomplete" in capsys.readouterr().err


# ----------------------------------------------------------------------
# torn checkpoints and manifests
# ----------------------------------------------------------------------
def test_truncated_checkpoint_is_recheckable(tmp_path, clean_report):
    """A torn shard file (simulated by the truncate fault) is rejected by
    the loader and transparently re-checked on resume."""
    run_dir = str(tmp_path / "run")
    faults.install("pipeline.checkpoint[shard=1]=truncate:40")
    first = run_pipeline(PipelineConfig(run_dir=run_dir, **TINY))
    assert os.path.getsize(_shard_path(run_dir, 1)) == 40
    faults.clear()
    resumed = run_pipeline(PipelineConfig(run_dir=run_dir, resume=True, **TINY))
    assert resumed.shards_resumed == first.shards_total - 1
    assert resumed.shards_checked == 1  # exactly the torn shard
    assert _essence(resumed) == _essence(clean_report)


def test_structurally_wrong_shard_lines_never_raise(tmp_path):
    """_load_shard must reject, not crash on, shard files whose lines are
    valid JSON but not objects (or otherwise mangled)."""
    run_dir = str(tmp_path / "run")
    os.makedirs(os.path.join(run_dir, "shards"))
    path = _shard_path(run_dir, 0)
    for content in (
        "[1, 2, 3]\n",  # JSON array line: used to raise AttributeError
        '"just a string"\n',
        '{"done": true, "tests": 1}\n{"done": true}\n',
        "",
        '{"test": "t", "key": "k"}\n',  # no done marker
    ):
        with open(path, "w") as handle:
            handle.write(content)
        assert _load_shard(run_dir, 0, ["digest"], 4) is None


def test_torn_manifest_is_rewritten_not_fatal(tmp_path):
    run_dir = str(tmp_path / "run")
    first = run_pipeline(PipelineConfig(run_dir=run_dir, **TINY))
    manifest_path = os.path.join(run_dir, "manifest.json")
    with open(manifest_path, "r+") as handle:
        handle.truncate(17)  # tear the manifest mid-object
    resumed = run_pipeline(PipelineConfig(run_dir=run_dir, resume=True, **TINY))
    assert resumed.shards_resumed == first.shards_total
    with open(manifest_path) as handle:
        assert json.load(handle)["bound"] == "tiny"  # rewritten whole


def test_mismatched_manifest_still_rejects_resume(tmp_path):
    run_pipeline(PipelineConfig(run_dir=str(tmp_path), **TINY))
    with pytest.raises(PipelineError, match="different run"):
        run_pipeline(
            PipelineConfig(
                run_dir=str(tmp_path), resume=True, bound="tiny",
                space="no_deps", shard_size=32,
            )
        )


# ----------------------------------------------------------------------
# the crash-resume acceptance scenario
# ----------------------------------------------------------------------
def test_crash_resume_is_bit_identical(tmp_path, clean_report):
    """The satellite acceptance test: SIGKILL a run mid-shard via the
    fault harness AND tear the last checkpoint, then assert --resume
    produces a bit-identical EquivalenceReport to an uninterrupted run."""
    run_dir = str(tmp_path / "run")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(sys.path)
    env["REPRO_FAULTS"] = (
        "pipeline.checkpoint[shard=1]=truncate:40,"
        "pipeline.shard[shard=2,attempt=0]=kill"
    )
    crashed = subprocess.run(
        [sys.executable, "-m", "repro.cli", "enumerate-verify",
         "--bound", "tiny", "--shard-size", "64", "--run-dir", run_dir],
        env=env, capture_output=True, text=True, timeout=600,
    )
    assert crashed.returncode == -signal.SIGKILL  # died mid-run, as injected
    # Shard 0 checkpointed cleanly; shard 1 is torn; shard 2+ never ran.
    assert os.path.exists(_shard_path(run_dir, 0))
    assert os.path.getsize(_shard_path(run_dir, 1)) == 40
    assert not os.path.exists(_shard_path(run_dir, 2))

    resumed = run_pipeline(PipelineConfig(run_dir=run_dir, resume=True, **TINY))
    assert resumed.shards_resumed == 1  # only the intact checkpoint
    assert resumed.shards_checked == clean_report.shards_total - 1
    assert _essence(resumed) == _essence(clean_report)
