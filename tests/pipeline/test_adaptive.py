"""The partition-guided adaptive verification layer.

Covers the soundness backbone (profile-equal tests have identical verdict
rows; frontier-skipped tests cannot refine the partition; derived verdicts
are bit-identical to searched ones), the partition checkpoint (roundtrip,
tamper rejection, merge), adaptive/brute differential equality, resume
determinism, the audit machinery, and the satellite API surfaces.
"""

import json
import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api.requests import ExhaustiveRequest, request_from_json, request_to_json
from repro.api.session import Session
from repro.cache.verdict import VerdictCache
from repro.core.parametric import model_space
from repro.engine.engine import CheckEngine
from repro.generation.enumeration import enumerate_raw_naive_items
from repro.generation.enumeration import test_from_items as _test_from_items
from repro.pipeline.adaptive import (
    AdaptiveSpace,
    PartitionCheckpoint,
    ProfileIndex,
    audit_selected,
    profile_digest,
)
from repro.pipeline.report import PartitionAccumulator
from repro.pipeline.run import BOUNDS, PipelineConfig, PipelineError, run_pipeline
from repro.native.backend import native_available

KERNELS = ["bigint"] + (["native"] if native_available() else [])

MODELS = model_space(include_data_dependencies=False)
MODEL_NAMES = [model.name for model in MODELS]
SPACE = AdaptiveSpace.build(MODELS)

#: every raw test of the small bound, materialised once for sampling
RAW_SMALL = list(enumerate_raw_naive_items(BOUNDS["small"]))

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)


def _column(engine, name, items):
    return engine.check_column(_test_from_items(items, name), MODELS)


def _mask(column):
    mask = 0
    for index, allowed in enumerate(column):
        if allowed:
            mask |= 1 << index
    return mask


# ----------------------------------------------------------------------
# the profile prefilter's certificate: profile-equal => row-equal
# ----------------------------------------------------------------------
@pytest.fixture(scope="module", params=KERNELS)
def rep_rows(request):
    """Per kernel: an engine plus a profile-digest -> verdict-row memo."""
    engine = CheckEngine(kernel=request.param)
    return engine, {}


@_SETTINGS
@given(index=st.integers(min_value=0, max_value=len(RAW_SMALL) - 1))
def test_profile_equal_tests_have_identical_verdict_rows(rep_rows, index):
    engine, memo = rep_rows
    name, items = RAW_SMALL[index]
    digest = profile_digest(SPACE.profile(items))
    column = _column(engine, name, items)
    previous = memo.setdefault(digest, column)
    assert column == previous


@_SETTINGS
@given(index=st.integers(min_value=0, max_value=len(RAW_SMALL) - 1))
def test_verdicts_are_constant_on_each_profile_group(rep_rows, index):
    engine, _memo = rep_rows
    name, items = RAW_SMALL[index]
    groups = SPACE.groups(SPACE.profile(items))
    mask = _mask(_column(engine, name, items))
    for group in groups:
        assert mask & group in (0, group), (
            f"verdict not constant on group {group:b} for {name}"
        )


def test_frontier_skipped_rows_cannot_refine_the_partition(tmp_path):
    """Every frontier certificate in a real run's shard files holds against
    the *final* matrix (monotonicity: skip-time matrix <= final matrix)."""
    run_dir = str(tmp_path / "run")
    report = run_pipeline(
        PipelineConfig(
            bound="small", kernel="bigint", adaptive=True,
            shard_size=64, run_dir=run_dir,
        )
    )
    checkpoint = PartitionCheckpoint.load(os.path.join(run_dir, "partition.json"))
    assert checkpoint is not None and checkpoint.shards_folded == report.shards_total
    final = PartitionAccumulator(MODEL_NAMES)
    final.distinguished = list(checkpoint.distinguished)
    engine = CheckEngine(kernel="bigint")
    by_name = dict(RAW_SMALL)
    frontier = []
    for shard_index in range(report.shards_total):
        with open(os.path.join(run_dir, "shards", f"shard-{shard_index:05d}.jsonl")) as fh:
            for line in fh:
                record = json.loads(line)
                if "frontier" in record:
                    frontier.append(record)
    assert len(frontier) == report.frontier_skips > 0
    for record in frontier:
        name = record["frontier"]
        mask = _mask(_column(engine, name, by_name[name]))
        # the recorded group decomposition really is verdict-constant...
        for bits in record["groups"]:
            group = sum(1 << i for i, b in enumerate(bits) if b == "1")
            assert mask & group in (0, group)
        # ...and the actual row cannot change the final matrix
        assert not final.row_would_change(mask)


# ----------------------------------------------------------------------
# adaptive == brute (the differential oracle)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("bound,space", [("tiny", "no_deps"), ("small", "no_deps"), ("tiny", "deps")])
def test_adaptive_partition_equals_brute_partition(bound, space):
    brute = run_pipeline(PipelineConfig(bound=bound, space=space, kernel="bigint"))
    adaptive = run_pipeline(
        PipelineConfig(bound=bound, space=space, kernel="bigint", adaptive=True)
    )
    assert adaptive.equivalence_classes == brute.equivalence_classes
    assert adaptive.hasse_edges == brute.hasse_edges
    assert adaptive.matches_template == brute.matches_template
    assert adaptive.adaptive and not brute.adaptive
    assert adaptive.unique_tests < brute.unique_tests
    assert adaptive.profile_skips > 0
    assert (
        adaptive.unique_tests + adaptive.profile_skips + adaptive.frontier_skips
        == adaptive.raw_tests
    )


def test_adaptive_derives_verdicts_and_brute_does_not():
    brute = run_pipeline(PipelineConfig(bound="tiny", kernel="bigint"))
    adaptive = run_pipeline(PipelineConfig(bound="tiny", kernel="bigint", adaptive=True))
    assert brute.stats.derived_verdicts == 0
    assert adaptive.stats.derived_verdicts > 0


def test_derive_flag_is_bit_identical_per_column():
    plain = CheckEngine(kernel="bigint")
    derived = CheckEngine(kernel="bigint")
    for name, items in RAW_SMALL[:200]:
        test = _test_from_items(items, name)
        assert plain.check_column(test, MODELS) == derived.check_column(
            test, MODELS, derive=True
        )
    assert derived.stats.derived_verdicts > 0
    assert plain.stats.derived_verdicts == 0
    searched = lambda s: s.native_searches + s.fallback_searches  # noqa: E731
    assert searched(derived.stats) < searched(plain.stats)


# ----------------------------------------------------------------------
# the partition checkpoint document
# ----------------------------------------------------------------------
def _checkpoint(**overrides):
    fields = dict(
        bound="small", space="no_deps", suite="no_deps", backend="explicit",
        shard_size=64, limit=None, model_names=["A", "B", "C"],
        space_digest="deadbeef",
    )
    fields.update(overrides)
    return PartitionCheckpoint(**fields)


def test_partition_checkpoint_roundtrips(tmp_path):
    checkpoint = _checkpoint()
    checkpoint.distinguished = [0b010, 0b001, 0b100]
    checkpoint.shards_folded, checkpoint.raw_offset = 3, 120
    path = str(tmp_path / "partition.json")
    checkpoint.write(path)
    loaded = PartitionCheckpoint.load(path)
    assert loaded is not None
    assert loaded.identity() == checkpoint.identity()
    assert loaded.distinguished == checkpoint.distinguished
    assert loaded.shards_folded == 3 and loaded.raw_offset == 120


def test_partition_checkpoint_rejects_tampering_and_tears(tmp_path):
    checkpoint = _checkpoint()
    path = str(tmp_path / "partition.json")
    checkpoint.write(path)
    text = open(path).read()
    open(path, "w").write(text.replace('"tests_folded": 0', '"tests_folded": 7'))
    assert PartitionCheckpoint.load(path) is None  # digest seal broken
    open(path, "w").write(text[: len(text) // 2])
    assert PartitionCheckpoint.load(path) is None  # torn write
    assert PartitionCheckpoint.load(str(tmp_path / "absent.json")) is None


def test_partition_checkpoint_merge_is_a_matrix_union():
    first = _checkpoint()
    first.distinguished = [0b010, 0b001, 0b100]
    first.tests_folded, first.profile_skips = 10, 4
    second = _checkpoint()
    second.distinguished = [0b100, 0b000, 0b001]
    second.tests_folded, second.profile_skips = 7, 2
    merged = first.merge(second)
    assert merged.distinguished == [0b110, 0b001, 0b101]
    assert merged.tests_folded == 17 and merged.profile_skips == 6
    # stream positions are not mergeable: the merged document restarts them
    assert merged.shards_folded == 0 and merged.raw_offset == 0


def test_partition_checkpoint_merge_refuses_identity_conflicts():
    with pytest.raises(ValueError, match="merge conflict"):
        _checkpoint().merge(_checkpoint(bound="tiny"))
    with pytest.raises(ValueError, match="merge conflict"):
        _checkpoint().merge(_checkpoint(space_digest="0123beef"))


def test_merged_checkpoint_warm_starts_a_cold_run(tmp_path):
    """A merged partition restarts the stream but keeps the matrix — the
    warm matrix turns already-distinguished work into frontier skips."""
    cold = run_pipeline(
        PipelineConfig(bound="small", kernel="bigint", adaptive=True)
    )
    run_dir = str(tmp_path / "run")
    full = run_pipeline(
        PipelineConfig(
            bound="small", kernel="bigint", adaptive=True, run_dir=run_dir
        )
    )
    path = os.path.join(run_dir, "partition.json")
    finished = PartitionCheckpoint.load(path)
    assert finished is not None
    merged = finished.merge(finished)
    merged.write(path)
    # resume from the merged (stream-restarted) checkpoint: everything is
    # already distinguished, so no test row needs checking at all
    resumed = run_pipeline(
        PipelineConfig(
            bound="small", kernel="bigint", adaptive=True,
            run_dir=run_dir, resume=True,
        )
    )
    assert resumed.equivalence_classes == full.equivalence_classes == cold.equivalence_classes
    assert resumed.frontier_skips >= full.frontier_skips


# ----------------------------------------------------------------------
# resume determinism
# ----------------------------------------------------------------------
class _Killed(Exception):
    pass


def _run_small(run_dir, resume=False, kill_after=None, audit_rate=0.0):
    seen = [0]

    def progress(event, payload):
        if event == "shard" and kill_after is not None:
            seen[0] += 1
            if seen[0] > kill_after:
                raise _Killed()

    return run_pipeline(
        PipelineConfig(
            bound="small", kernel="bigint", adaptive=True, shard_size=24,
            run_dir=run_dir, resume=resume, audit_rate=audit_rate,
        ),
        progress=progress,
    )


def test_adaptive_resume_is_bit_identical(tmp_path):
    full_dir, killed_dir = str(tmp_path / "full"), str(tmp_path / "killed")
    full = _run_small(full_dir)
    with pytest.raises(_Killed):
        _run_small(killed_dir, kill_after=2)
    mid = PartitionCheckpoint.load(os.path.join(killed_dir, "partition.json"))
    assert mid is not None and 0 < mid.shards_folded
    resumed = _run_small(killed_dir, resume=True)
    assert resumed.equivalence_classes == full.equivalence_classes
    assert resumed.hasse_edges == full.hasse_edges
    assert resumed.unique_tests == full.unique_tests
    assert resumed.profile_skips == full.profile_skips
    assert resumed.frontier_skips == full.frontier_skips
    assert resumed.raw_tests == full.raw_tests
    assert resumed.shards_resumed == mid.shards_folded
    final_full = json.load(open(os.path.join(full_dir, "partition.json")))
    final_resumed = json.load(open(os.path.join(killed_dir, "partition.json")))
    assert final_full["digest"] == final_resumed["digest"]


def test_adaptive_resume_survives_a_torn_partition_checkpoint(tmp_path):
    """A torn checkpoint degrades to a cold start, never a crash."""
    run_dir = str(tmp_path / "run")
    full = _run_small(run_dir)
    path = os.path.join(run_dir, "partition.json")
    text = open(path).read()
    open(path, "w").write(text[: len(text) // 3])
    again = _run_small(run_dir, resume=True)
    assert again.equivalence_classes == full.equivalence_classes
    assert again.shards_resumed == 0  # cold start: nothing restorable


def test_resume_refuses_a_different_kernel(tmp_path):
    run_dir = str(tmp_path / "run")
    _run_small(run_dir)
    manifest_path = os.path.join(run_dir, "manifest.json")
    manifest = json.load(open(manifest_path))
    assert manifest["kernel"] == "bigint"
    assert manifest["adaptive"] is True
    assert manifest["schema_version"] == 2
    manifest["kernel"] = "somekernel"
    json.dump(manifest, open(manifest_path, "w"))
    with pytest.raises(PipelineError, match="kernel"):
        _run_small(run_dir, resume=True)


def test_resume_refuses_crossing_adaptive_and_brute(tmp_path):
    run_dir = str(tmp_path / "run")
    run_pipeline(
        PipelineConfig(bound="tiny", kernel="bigint", shard_size=64, run_dir=run_dir)
    )
    with pytest.raises(PipelineError, match="adaptive"):
        run_pipeline(
            PipelineConfig(
                bound="tiny", kernel="bigint", shard_size=64,
                run_dir=run_dir, resume=True, adaptive=True,
            )
        )


# ----------------------------------------------------------------------
# audits
# ----------------------------------------------------------------------
def test_audit_selection_is_deterministic_and_proportional():
    picks = [audit_selected("d", f"N{i}", 0.25) for i in range(4000)]
    assert 0.2 < sum(picks) / len(picks) < 0.3
    assert picks == [audit_selected("d", f"N{i}", 0.25) for i in range(4000)]
    assert not any(audit_selected("d", f"N{i}", 0.0) for i in range(50))
    assert all(audit_selected("d", f"N{i}", 1.0) for i in range(50))


def test_full_audit_passes_and_is_counted(tmp_path):
    report = _run_small(str(tmp_path / "run"), audit_rate=1.0)
    assert report.audits_performed == report.profile_skips + report.frontier_skips > 0


def test_audit_fails_on_an_unsound_skip(monkeypatch):
    """Force every test onto one profile: the dedup becomes unsound, and a
    full audit must catch it and fail the run."""
    constant = SPACE.profile(RAW_SMALL[0][1])
    monkeypatch.setattr(AdaptiveSpace, "profile", lambda self, items: constant)
    with pytest.raises(PipelineError, match="audit failed"):
        run_pipeline(
            PipelineConfig(
                bound="small", kernel="bigint", adaptive=True, audit_rate=1.0
            )
        )


# ----------------------------------------------------------------------
# shard records & config plumbing
# ----------------------------------------------------------------------
def test_adaptive_shard_files_carry_certificates(tmp_path):
    run_dir = str(tmp_path / "run")
    report = _run_small(run_dir)
    rows = skips = frontiers = 0
    for shard_index in range(report.shards_total):
        path = os.path.join(run_dir, "shards", f"shard-{shard_index:05d}.jsonl")
        lines = [json.loads(line) for line in open(path)]
        marker = lines[-1]
        assert marker["done"] is True
        for record in lines[:-1]:
            if "test" in record:
                rows += 1
                assert set(record) == {"test", "key", "verdicts"}
                assert len(record["verdicts"]) == len(MODEL_NAMES)
            elif "skip" in record:
                skips += 1
                assert set(record) == {"skip", "profile", "rep"}
            else:
                frontiers += 1
                assert set(record) == {"frontier", "profile", "groups"}
    assert rows == report.unique_tests
    assert skips == report.profile_skips
    assert frontiers == report.frontier_skips
    assert marker["raw_offset"] == report.raw_tests


def test_config_validation_for_adaptive_options():
    with pytest.raises(PipelineError, match="audit_rate"):
        PipelineConfig(audit_rate=1.5, adaptive=True)
    with pytest.raises(PipelineError, match="requires adaptive"):
        PipelineConfig(audit_rate=0.5)
    with pytest.raises(PipelineError, match="requires adaptive"):
        PipelineConfig(partition_checkpoint="/tmp/p.json")


def test_xlarge_bound_is_registered():
    config = BOUNDS["xlarge"]
    assert config.max_accesses_per_thread == 3
    assert config.max_locations == 3
    assert config.allow_fences


def test_exhaustive_request_roundtrips_adaptive_fields():
    request = ExhaustiveRequest(
        bound="tiny", adaptive=True, audit_rate=0.25,
        partition_checkpoint="/tmp/p.json",
    )
    wire = request_to_json(request)
    assert wire["adaptive"] is True and wire["audit_rate"] == 0.25
    assert request_from_json(wire) == request


def test_session_rejects_partition_checkpoint_when_path_restricted(tmp_path):
    session = Session(kernel="bigint")
    session.tests.allow_paths = False
    with pytest.raises(ValueError, match="partition_checkpoint"):
        session.run(
            ExhaustiveRequest(
                bound="tiny", adaptive=True,
                partition_checkpoint=str(tmp_path / "p.json"),
            )
        )


def test_session_runs_adaptive_exhaustive_end_to_end(tmp_path):
    session = Session(kernel="bigint")
    report = session.run(
        ExhaustiveRequest(
            bound="tiny", adaptive=True, audit_rate=0.5,
            run_dir=str(tmp_path / "run"),
        )
    )
    assert report.adaptive and report.profile_skips > 0
    assert os.path.exists(str(tmp_path / "run" / "partition.json"))


# ----------------------------------------------------------------------
# the explore memo (serve's digest fast path, extended to explore)
# ----------------------------------------------------------------------
def test_explore_memo_returns_identical_results_and_counts_hits():
    from repro.api.requests import ExploreRequest

    cached = Session(engine=CheckEngine(kernel="bigint", verdict_cache=VerdictCache()))
    uncached = Session(engine=CheckEngine(kernel="bigint"))
    request = ExploreRequest(space="no_deps")
    first = cached.run(request)
    hits_before = cached.engine.verdict_cache.stats.hits
    second = cached.run(request)
    assert second is first  # memoized wholesale
    assert cached.engine.verdict_cache.stats.hits == hits_before + 1
    plain = uncached.run(request)
    assert uncached.run(request) is not plain  # no cache, no memo
    from repro.api.serialize import to_json

    # cache on/off bit-identical, modulo the engine's incidental perf
    # counters (the verdict cache legitimately changes how much work ran)
    memo_doc, plain_doc = to_json(first), to_json(plain)
    memo_doc.pop("stats"), plain_doc.pop("stats")
    assert memo_doc == plain_doc


def test_explore_memo_is_shared_across_session_views():
    from repro.api.requests import ExploreRequest

    base = Session(engine=CheckEngine(kernel="bigint", verdict_cache=VerdictCache()))
    first = base.view().run(ExploreRequest(space="no_deps"))
    assert base.view().run(ExploreRequest(space="no_deps")) is first
