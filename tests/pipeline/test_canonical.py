"""Unit tests for the symmetry-reducing canonicalizer."""


from repro.core.instructions import Fence, Load, Op, Store
from repro.core.litmus import LitmusTest
from repro.core.program import Program, Thread
from repro.pipeline.canonical import (
    CanonicalIndex,
    abstract_test,
    build_canonical_test,
    canonical_form,
    canonical_key,
    canonical_stream,
    canonicalize,
    key_digest,
)


def make_test(name, *thread_bodies, reads=None):
    threads = [Thread(f"T{i + 1}", body) for i, body in enumerate(thread_bodies)]
    return LitmusTest(name, Program(threads), reads or {})


MP = make_test(
    "mp",
    [Store("X", 1), Store("Y", 1)],
    [Load("r1", "Y"), Load("r2", "X")],
    reads={(1, 0): 1, (1, 1): 0},
)

#: MP with the threads swapped — the same test up to thread permutation.
MP_SWAPPED = make_test(
    "mp-swapped",
    [Load("r1", "Y"), Load("r2", "X")],
    [Store("X", 1), Store("Y", 1)],
    reads={(0, 0): 1, (0, 1): 0},
)

#: MP with locations renamed (X <-> Y everywhere).
MP_RENAMED = make_test(
    "mp-renamed",
    [Store("Y", 1), Store("X", 1)],
    [Load("r1", "X"), Load("r2", "Y")],
    reads={(1, 0): 1, (1, 1): 0},
)

#: MP with the written value renamed 1 -> 7 (and the observing read with it).
MP_REVALUED = make_test(
    "mp-revalued",
    [Store("X", 3), Store("Y", 7)],
    [Load("r1", "Y"), Load("r2", "X")],
    reads={(1, 0): 7, (1, 1): 0},
)


def test_thread_permutation_collapses():
    assert canonical_key(MP) == canonical_key(MP_SWAPPED)


def test_location_renaming_collapses():
    assert canonical_key(MP) == canonical_key(MP_RENAMED)


def test_value_renaming_collapses():
    assert canonical_key(MP) == canonical_key(MP_REVALUED)


def test_distinct_outcomes_stay_distinct():
    other = make_test(
        "mp-other",
        [Store("X", 1), Store("Y", 1)],
        [Load("r1", "Y"), Load("r2", "X")],
        reads={(1, 0): 1, (1, 1): 1},  # r2 observes the write instead of 0
    )
    assert canonical_key(MP) != canonical_key(other)


def test_zero_is_not_renamable():
    """A store of the initial value 0 is semantically special and stays 0."""
    writes_zero = make_test(
        "wz", [Store("X", 0)], [Load("r1", "X")], reads={(1, 0): 0}
    )
    writes_one = make_test(
        "wo", [Store("X", 1)], [Load("r1", "X")], reads={(1, 0): 1}
    )
    # In the first test the read may take the initial value OR the store; in
    # the second it must read from the store.  They must never collapse.
    assert canonical_key(writes_zero) != canonical_key(writes_one)


def test_fence_kinds_are_preserved():
    full = make_test("f1", [Store("X", 1), Fence(), Store("Y", 1)])
    exotic = make_test("f2", [Store("X", 1), Fence("st"), Store("Y", 1)])
    assert canonical_key(full) != canonical_key(exotic)
    assert abstract_test(full)[0][1] == ("F", "full", 0)


def test_canonicalize_is_idempotent_and_key_stable():
    for test in (MP, MP_SWAPPED, MP_RENAMED, MP_REVALUED):
        representative = canonicalize(test)
        representative.program.validate()
        assert canonical_key(representative) == canonical_key(test)
        again = canonicalize(representative)
        assert again.program == representative.program
        assert again.outcome == representative.outcome


def test_symmetric_tests_share_one_representative_program():
    reps = {canonicalize(t).program for t in (MP, MP_SWAPPED, MP_RENAMED, MP_REVALUED)}
    assert len(reps) == 1


def test_dependency_instructions_are_left_alone():
    dep = make_test(
        "dep",
        [Load("r1", "X"), Op("t1", "r1")],
        [Store("X", 1)],
        reads={(0, 0): 1},
    )
    assert abstract_test(dep) is None
    assert canonicalize(dep) is dep
    key = canonical_key(dep)
    assert key[0] == "opaque"
    # Opaque keys are content-based and deterministic.
    assert key == canonical_key(dep)
    assert key != canonical_key(MP)


def test_build_canonical_test_round_trips_through_abstract():
    form = canonical_form(abstract_test(MP))
    rebuilt = build_canonical_test(form, "rebuilt")
    assert canonical_form(abstract_test(rebuilt)) == form


def test_canonical_index_counts_offers_and_uniques():
    index = CanonicalIndex()
    assert index.add(canonical_key(MP))
    assert not index.add(canonical_key(MP_SWAPPED))
    assert not index.add(canonical_key(MP_REVALUED))
    assert index.offered == 3
    assert len(index) == 1


def test_canonical_index_digest_mode_matches_exact_mode():
    exact, digests = CanonicalIndex(), CanonicalIndex(digests=True)
    for test in (MP, MP_SWAPPED, MP_RENAMED, MP_REVALUED):
        assert exact.add(canonical_key(test)) == digests.add(canonical_key(test))
    assert len(exact) == len(digests) == 1


def test_key_digest_is_stable_and_hex():
    digest = key_digest(canonical_key(MP))
    assert digest == key_digest(canonical_key(MP_SWAPPED))
    assert len(digest) == 32
    int(digest, 16)


def test_canonical_stream_yields_first_seen_representatives():
    stream = list(canonical_stream([MP, MP_SWAPPED, MP_RENAMED]))
    assert len(stream) == 1
    key, test = stream[0]
    assert test is MP  # first seen wins
    assert key == canonical_key(MP)


def test_canonical_stream_respects_limit_and_shared_index():
    index = CanonicalIndex()
    tests = [MP, MP_SWAPPED, MP_REVALUED]
    assert len(list(canonical_stream(tests, index=index, limit=0))) == 0
    assert index.offered == 0
    assert len(list(canonical_stream(tests, index=CanonicalIndex(), limit=1))) == 1
