"""The CI perf-regression gate, tested deterministically.

No timing happens here: synthetic baseline and fresh documents drive
``benchmarks/check_regression.py`` through every verdict — in particular
the acceptance fact that an artificially slowed benchmark result makes the
gate fail.
"""

import json
import sys
from pathlib import Path

import pytest

BENCHMARKS_DIR = Path(__file__).parent.parent.parent / "benchmarks"
sys.path.insert(0, str(BENCHMARKS_DIR))

import check_regression  # noqa: E402  (needs the path tweak above)


def write_baseline(path, medians):
    path.write_text(
        json.dumps(
            {
                "schema": "repro/bench_baseline",
                "schema_version": 1,
                "benchmarks": {name: {"median": m} for name, m in medians.items()},
            }
        )
    )


def write_fresh(path, medians):
    """Write the raw pytest-benchmark shape (with a machine-specific prefix)."""
    path.write_text(
        json.dumps(
            {
                "benchmarks": [
                    {"fullname": f"home/runner/work/repo/{name}", "stats": {"median": m}}
                    for name, m in medians.items()
                ]
            }
        )
    )


NAMES = [f"benchmarks/bench_x.py::test_{i}" for i in range(5)]
BASE = {name: 0.1 for name in NAMES}


def run_gate(tmp_path, fresh_medians, *extra_args):
    baseline_path = tmp_path / "baseline.json"
    fresh_path = tmp_path / "fresh.json"
    write_baseline(baseline_path, BASE)
    write_fresh(fresh_path, fresh_medians)
    return check_regression.main(
        [str(fresh_path), "--baseline", str(baseline_path), *extra_args]
    )


def test_identical_result_passes(tmp_path):
    assert run_gate(tmp_path, dict(BASE)) == 0


def test_artificially_slowed_benchmark_fails(tmp_path, capsys):
    """The acceptance fact: a 2x-slowed median must fail the gate."""
    slowed = dict(BASE)
    slowed[NAMES[0]] = 0.2
    assert run_gate(tmp_path, slowed) == 1
    captured = capsys.readouterr()
    assert "REGRESSION" in captured.err
    assert NAMES[0] in captured.err


def test_slowdown_within_tolerance_passes(tmp_path):
    within = dict(BASE)
    within[NAMES[0]] = 0.11  # +10% < 25%
    assert run_gate(tmp_path, within) == 0


def test_uniformly_slower_machine_is_calibrated_away(tmp_path):
    """2x across the board reads as machine speed, not regression."""
    uniform = {name: 0.2 for name in NAMES}
    assert run_gate(tmp_path, uniform) == 0
    # ... but strict absolute gating still catches it.
    assert run_gate(tmp_path, uniform, "--no-calibrate") == 1


def test_relative_regression_fails_even_on_a_faster_machine(tmp_path):
    """The machine got 2x faster but one benchmark only broke even: fail."""
    fresh = {name: 0.05 for name in NAMES}
    fresh[NAMES[0]] = 0.1
    assert run_gate(tmp_path, fresh) == 1


def test_missing_baselined_benchmark_fails(tmp_path, capsys):
    fresh = dict(BASE)
    del fresh[NAMES[0]]
    assert run_gate(tmp_path, fresh) == 1
    assert "missing from the fresh run" in capsys.readouterr().err


def test_new_benchmark_passes_with_a_note(tmp_path, capsys):
    fresh = dict(BASE)
    fresh["benchmarks/bench_x.py::test_new"] = 5.0
    assert run_gate(tmp_path, fresh) == 0
    assert "new benchmark" in capsys.readouterr().out


def test_tolerance_flag_widens_the_gate(tmp_path):
    slowed = dict(BASE)
    slowed[NAMES[0]] = 0.135  # +35%
    assert run_gate(tmp_path, slowed) == 1
    assert run_gate(tmp_path, slowed, "--tolerance", "50") == 0


def test_normalize_name_strips_machine_prefix():
    assert (
        check_regression.normalize_name("root/repo/benchmarks/bench_a.py::test_b")
        == "benchmarks/bench_a.py::test_b"
    )
    assert (
        check_regression.normalize_name("benchmarks/bench_a.py::test_b")
        == "benchmarks/bench_a.py::test_b"
    )


def test_committed_baseline_is_loadable_and_nonempty():
    medians = check_regression.load_medians(check_regression.DEFAULT_BASELINE)
    assert len(medians) >= 20
    assert all(median > 0 for median in medians.values())
    assert all(name.startswith("benchmarks/") for name in medians)


def test_unreadable_inputs_are_a_usage_error(tmp_path):
    assert check_regression.main([str(tmp_path / "nope.json")]) == 2
