"""End-to-end tests of the public API surface and the command-line interface."""

import io
import json

import pytest

import repro
from repro.cli import build_parser, main, resolve_model
from repro.io.writer import write_litmus_file


def test_package_exports_are_importable():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.{name} missing"
    assert repro.__version__


def test_quickstart_snippet_from_module_docstring():
    from repro import SC, TEST_A, TSO, is_allowed

    assert is_allowed(TEST_A, TSO)
    assert not is_allowed(TEST_A, SC)


def test_compare_models_via_top_level_api():
    from repro import L_TESTS, SC, TSO, Relation, compare_models

    result = compare_models(SC, TSO, L_TESTS)
    assert result.relation is Relation.STRONGER


def test_resolve_model_accepts_catalog_and_parametric_names():
    with pytest.warns(DeprecationWarning):
        assert resolve_model("TSO").name == "TSO"
        assert resolve_model("M4044").name == "M4044"
        with pytest.raises(SystemExit):
            resolve_model("NotAModel")


def test_cli_catalog(capsys):
    assert main(["catalog"]) == 0
    output = capsys.readouterr().out
    assert "TSO" in output and "SC" in output


def test_cli_check_litmus_file(tmp_path, capsys):
    path = tmp_path / "a.litmus"
    write_litmus_file(repro.TEST_A, path)
    assert main(["check", str(path), "--model", "TSO"]) == 0
    assert "ALLOWED" in capsys.readouterr().out
    assert main(["--backend", "sat", "check", str(path), "--model", "SC"]) == 0
    assert "FORBIDDEN" in capsys.readouterr().out


def test_cli_compare(capsys):
    assert main(["compare", "TSO", "x86", "--no-deps"]) == 0
    assert "equivalent" in capsys.readouterr().out
    assert main(["compare", "SC", "M4044", "--no-deps"]) == 0
    assert "stronger" in capsys.readouterr().out


def test_cli_outcomes(tmp_path, capsys):
    path = tmp_path / "a.litmus"
    write_litmus_file(repro.L_TESTS[6], path)  # store buffering (L7)
    assert main(["outcomes", str(path), "--model", "SC"]) == 0
    output = capsys.readouterr().out
    assert "Outcomes allowed under SC" in output
    assert output.count("r1") >= 3


def test_cli_explore_small_space(tmp_path, capsys):
    dot_path = tmp_path / "space.dot"
    assert main(["explore", "--no-deps", "--dot", str(dot_path)]) == 0
    output = capsys.readouterr().out
    assert "Explored 36 models" in output
    assert dot_path.exists()
    assert dot_path.read_text().startswith("digraph")


def test_cli_parser_rejects_unknown_backend():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["--backend", "bogus", "catalog"])


def test_cli_rejects_unknown_model_with_clear_error():
    with pytest.raises(SystemExit) as excinfo:
        main(["compare", "TSO", "NotAModel", "--no-deps"])
    assert "NotAModel" in str(excinfo.value)


# ----------------------------------------------------------------------
# --format json on every subcommand
# ----------------------------------------------------------------------
def test_cli_check_json(tmp_path, capsys):
    from repro.api.serialize import from_json

    path = tmp_path / "a.litmus"
    write_litmus_file(repro.TEST_A, path)
    assert main(["check", str(path), "--model", "TSO", "--format", "json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["schema"] == "repro/check_result"
    result = from_json(document)
    assert result.allowed and result.model_name == "TSO"
    assert result.witness is not None


def test_cli_compare_json(capsys):
    from repro.api.serialize import from_json
    from repro.comparison.compare import Relation

    assert main(["compare", "SC", "M4044", "--no-deps", "--format", "json"]) == 0
    result = from_json(json.loads(capsys.readouterr().out))
    assert result.relation is Relation.STRONGER


def test_cli_outcomes_json(tmp_path, capsys):
    from repro.api.serialize import from_json

    path = tmp_path / "sb.litmus"
    write_litmus_file(repro.L_TESTS[6], path)
    assert main(["outcomes", str(path), "--model", "SC", "--format", "json"]) == 0
    result = from_json(json.loads(capsys.readouterr().out))
    assert result.model_name == "SC" and len(result) == 3


def test_cli_catalog_json(capsys):
    from repro.api.serialize import from_json

    assert main(["catalog", "--format", "json"]) == 0
    documents = json.loads(capsys.readouterr().out)
    models = [from_json(document) for document in documents]
    assert "TSO" in {model.name for model in models}


def test_cli_explore_json_roundtrips_through_validate(capsys):
    """Acceptance: ``repro explore --format json | python -m repro.api.validate``
    round-trips to an ExplorationResult equal to the in-process one."""
    from repro.api import ExploreRequest, Session
    from repro.api.serialize import from_json
    from repro.api.validate import main as validate_main

    assert main(["explore", "--no-deps", "--format", "json"]) == 0
    output = capsys.readouterr().out

    # the validate filter accepts the document verbatim
    assert validate_main([], input_stream=io.StringIO(output)) == 0
    assert "OK: valid exploration_result" in capsys.readouterr().err

    # and the deserialized result equals the in-process exploration
    piped = from_json(json.loads(output))
    in_process = Session().run(ExploreRequest(space="no_deps"))
    assert piped == in_process


def test_validate_rejects_tampered_documents(capsys):
    from repro.api.validate import main as validate_main

    assert main(["compare", "TSO", "x86", "--no-deps", "--format", "json"]) == 0
    document = json.loads(capsys.readouterr().out)
    document["schema_version"] = 99
    assert validate_main([], input_stream=io.StringIO(json.dumps(document))) == 1
    assert "INVALID" in capsys.readouterr().err


# ----------------------------------------------------------------------
# repro serve
# ----------------------------------------------------------------------
def test_cli_serve_stdin_roundtrip(monkeypatch, capsys):
    requests = "\n".join(
        [
            json.dumps({"op": "check", "test": "A", "model": "TSO"}),
            json.dumps({"op": "compare", "first": "TSO", "second": "x86", "suite": "no_deps"}),
            json.dumps({"op": "explore", "space": "no_deps"}),
        ]
    )
    monkeypatch.setattr("sys.stdin", io.StringIO(requests + "\n"))
    assert main(["serve"]) == 0
    responses = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
    assert [response["ok"] for response in responses] == [True, True, True]
    # the warm session answers the exploration from the compare's caches
    assert responses[2]["stats"]["executions_evaluated"] == 0
    assert responses[2]["stats"]["context_cache_hits"] > 0


# ----------------------------------------------------------------------
# `repro models` and --model-file
# ----------------------------------------------------------------------
MODEL_FILE_TEXT = """\
model "FileTSO"
description "TSO loaded from a .model file"
predicates Read Write Fence SameAddr
formula (Write(x) & Write(y)) | Read(x) | Fence(x) | Fence(y)
"""


def test_cli_models_lists_catalog_and_families(capsys):
    assert main(["models"]) == 0
    output = capsys.readouterr().out
    assert "TSO" in output and "F(x, y)" in output
    assert "predicates:" in output
    assert "no_deps" in output and "36 models" in output
    assert "deps" in output and "90 models" in output


def test_cli_models_json_lists_formulas_and_vocabulary(capsys):
    import json as json_module

    assert main(["models", "--format", "json"]) == 0
    document = json_module.loads(capsys.readouterr().out)
    assert document["schema"] == "repro/model_list"
    names = [entry["name"] for entry in document["models"]]
    assert "TSO" in names and "SC" in names
    families = {family["key"]: family for family in document["families"]}
    assert families["deps"]["size"] == 90
    assert "DataDep" in families["deps"]["predicates"]
    assert families["no_deps"]["size"] == 36


def test_cli_models_space_lists_every_member(capsys):
    import json as json_module

    assert main(["models", "--space", "no_deps", "--format", "json"]) == 0
    document = json_module.loads(capsys.readouterr().out)
    names = [entry["name"] for entry in document["models"]]
    assert "M4444" in names and "M4044" in names
    assert len(names) >= 36


def test_cli_model_file_registers_models(tmp_path, capsys):
    path = tmp_path / "file_tso.model"
    path.write_text(MODEL_FILE_TEXT)
    assert main(["--model-file", str(path), "compare", "FileTSO", "TSO", "--no-deps"]) == 0
    assert "equivalent" in capsys.readouterr().out
    # The registered model shows up in `repro models`.
    assert main(["--model-file", str(path), "models"]) == 0
    assert "FileTSO" in capsys.readouterr().out


def test_cli_model_paths_resolve_directly(tmp_path, capsys):
    path = tmp_path / "file_tso.model"
    path.write_text(MODEL_FILE_TEXT)
    litmus = tmp_path / "a.litmus"
    write_litmus_file(repro.TEST_A, litmus)
    assert main(["check", str(litmus), "--model", str(path)]) == 0
    assert "ALLOWED" in capsys.readouterr().out


def test_cli_model_file_errors_are_clear(tmp_path, capsys):
    path = tmp_path / "broken.model"
    path.write_text("model Broken\nformula Write(x) & )\n")
    with pytest.raises(SystemExit) as info:
        main(["--model-file", str(path), "catalog"])
    assert "broken.model" in str(info.value)


def test_cli_bad_model_paths_exit_cleanly(tmp_path):
    litmus = tmp_path / "a.litmus"
    write_litmus_file(repro.TEST_A, litmus)
    with pytest.raises(SystemExit) as info:
        main(["check", str(litmus), "--model", str(tmp_path / "missing.model")])
    assert "missing.model" in str(info.value)
    broken = tmp_path / "broken.model"
    broken.write_text("model B\nformula Write(x) & )\n")
    with pytest.raises(SystemExit) as info:
        main(["check", str(litmus), "--model", str(broken)])
    assert "broken.model" in str(info.value)
