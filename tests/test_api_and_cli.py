"""End-to-end tests of the public API surface and the command-line interface."""

import pytest

import repro
from repro.cli import build_parser, main, resolve_model
from repro.io.writer import write_litmus_file


def test_package_exports_are_importable():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.{name} missing"
    assert repro.__version__


def test_quickstart_snippet_from_module_docstring():
    from repro import SC, TEST_A, TSO, is_allowed

    assert is_allowed(TEST_A, TSO)
    assert not is_allowed(TEST_A, SC)


def test_compare_models_via_top_level_api():
    from repro import L_TESTS, SC, TSO, Relation, compare_models

    result = compare_models(SC, TSO, L_TESTS)
    assert result.relation is Relation.STRONGER


def test_resolve_model_accepts_catalog_and_parametric_names():
    assert resolve_model("TSO").name == "TSO"
    assert resolve_model("M4044").name == "M4044"
    with pytest.raises(SystemExit):
        resolve_model("NotAModel")


def test_cli_catalog(capsys):
    assert main(["catalog"]) == 0
    output = capsys.readouterr().out
    assert "TSO" in output and "SC" in output


def test_cli_check_litmus_file(tmp_path, capsys):
    path = tmp_path / "a.litmus"
    write_litmus_file(repro.TEST_A, path)
    assert main(["check", str(path), "--model", "TSO"]) == 0
    assert "ALLOWED" in capsys.readouterr().out
    assert main(["--backend", "sat", "check", str(path), "--model", "SC"]) == 0
    assert "FORBIDDEN" in capsys.readouterr().out


def test_cli_compare(capsys):
    assert main(["compare", "TSO", "x86", "--no-deps"]) == 0
    assert "equivalent" in capsys.readouterr().out
    assert main(["compare", "SC", "M4044", "--no-deps"]) == 0
    assert "stronger" in capsys.readouterr().out


def test_cli_outcomes(tmp_path, capsys):
    path = tmp_path / "a.litmus"
    write_litmus_file(repro.L_TESTS[6], path)  # store buffering (L7)
    assert main(["outcomes", str(path), "--model", "SC"]) == 0
    output = capsys.readouterr().out
    assert "Outcomes allowed under SC" in output
    assert output.count("r1") >= 3


def test_cli_explore_small_space(tmp_path, capsys):
    dot_path = tmp_path / "space.dot"
    assert main(["explore", "--no-deps", "--dot", str(dot_path)]) == 0
    output = capsys.readouterr().out
    assert "Explored 36 models" in output
    assert dot_path.exists()
    assert dot_path.read_text().startswith("digraph")


def test_cli_parser_rejects_unknown_backend():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["--backend", "bogus", "catalog"])
