"""Unit tests for the verdict cache: LRU semantics, digest-key rules,
persistence, corruption tolerance and thread safety."""

import dataclasses
import json
import threading

import pytest

from repro.cache import STORE_FORMAT, STORE_VERSION, VerdictCache, VerdictStore
from repro.cache.persist import store_info
from repro.core.catalog import named_models
from repro.core.model import MemoryModel
from repro.generation.named_tests import L_TESTS, all_named_tests
from repro.util import faults


@pytest.fixture(autouse=True)
def _isolate_faults():
    saved = faults.snapshot()
    faults.clear()
    yield
    faults.restore(saved)


def _keys(n):
    return [(f"model{i:04d}", f"test{i:04d}") for i in range(n)]


# ----------------------------------------------------------------------
# the memory tier
# ----------------------------------------------------------------------
def test_get_put_and_counters():
    cache = VerdictCache()
    key = ("m", "t")
    assert cache.get(key) is None
    assert cache.put(key, True) is True
    assert cache.put(key, True) is False  # repeat: not a new insert
    assert cache.get(key) is True
    stats = cache.stats
    assert (stats.hits, stats.misses, stats.stores) == (1, 1, 1)
    assert stats.entries == len(cache) == 1
    assert key in cache


def test_lru_evicts_the_least_recently_used():
    cache = VerdictCache(capacity=3)
    a, b, c, d = _keys(4)
    for key in (a, b, c):
        cache.put(key, True)
    assert cache.get(a) is True  # refresh a: b is now the oldest
    cache.put(d, False)
    assert b not in cache
    assert all(key in cache for key in (a, c, d))
    assert cache.stats.evictions == 1


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        VerdictCache(capacity=0)


def test_verdict_is_normalised_to_bool():
    cache = VerdictCache()
    cache.put(("m", "t"), 1)
    assert cache.get(("m", "t")) is True


# ----------------------------------------------------------------------
# key rules: only process-stable identities get a key
# ----------------------------------------------------------------------
def test_formula_model_and_canonical_test_get_a_key():
    cache = VerdictCache()
    model = named_models()["TSO"]
    test = L_TESTS[0]
    key = cache.key_for(test, model)
    assert key is not None
    model_digest, test_digest = key
    assert model_digest and test_digest


def test_callable_model_is_never_cached():
    cache = VerdictCache()
    opaque = MemoryModel("opaque", lambda execution, x, y: True)
    assert cache.model_digest(opaque) is None
    assert cache.key_for(L_TESTS[0], opaque) is None


def test_structurally_equal_models_share_a_digest():
    cache = VerdictCache()
    first = named_models()["TSO"]
    second = dataclasses.replace(first, name="renamed")
    assert cache.model_digest(first) == cache.model_digest(second)


def test_digest_memo_is_identity_checked():
    cache = VerdictCache()
    model = named_models()["TSO"]
    first = cache.model_digest(model)
    # Clearing the memo and re-asking must recompute the same digest.
    cache._model_digests.clear()
    assert cache.model_digest(model) == first


def test_every_named_test_key_is_deterministic():
    one, two = VerdictCache(), VerdictCache()
    for test in all_named_tests().values():
        assert one.test_digest(test) == two.test_digest(test)


# ----------------------------------------------------------------------
# the persistent tier
# ----------------------------------------------------------------------
def test_persistence_roundtrip_and_header(tmp_path):
    cache = VerdictCache.open(str(tmp_path))
    for i, key in enumerate(_keys(5)):
        cache.put(key, i % 2 == 0)
    cache.close()

    lines = (tmp_path / "verdicts.jsonl").read_text().splitlines()
    header = json.loads(lines[0])
    assert header == {"format": STORE_FORMAT, "version": STORE_VERSION}
    assert len(lines) == 6

    reloaded = VerdictCache.open(str(tmp_path))
    assert len(reloaded) == 5
    for i, key in enumerate(_keys(5)):
        assert reloaded.get(key) is (i % 2 == 0)
    assert reloaded.stats.persisted_loaded == 5
    assert reloaded.stats.persisted_skipped == 0


def test_torn_tail_is_skipped_not_fatal(tmp_path):
    cache = VerdictCache.open(str(tmp_path))
    for key in _keys(4):
        cache.put(key, True)
    cache.close()
    path = tmp_path / "verdicts.jsonl"
    torn = path.read_text()[:-15]  # cut into the last entry
    path.write_text(torn)

    reloaded = VerdictCache.open(str(tmp_path))
    assert len(reloaded) == 3
    assert reloaded.stats.persisted_skipped == 1


def test_garbage_lines_are_skipped(tmp_path):
    store = VerdictStore(str(tmp_path))
    store.append(("m", "t"), True)
    store.close()
    path = tmp_path / "verdicts.jsonl"
    with path.open("a") as handle:
        handle.write("not json at all\n")
        handle.write('{"m": 3, "t": "bad-types", "v": 1}\n')
        handle.write('["not", "a", "dict"]\n')
        handle.write('{"m": "ok", "t": "ok", "v": 1}\n')

    fresh = VerdictStore(str(tmp_path))
    entries = fresh.load()
    assert entries == {("m", "t"): True, ("ok", "ok"): True}
    assert fresh.skipped == 3


def test_foreign_or_future_file_is_preserved_untouched(tmp_path):
    path = tmp_path / "verdicts.jsonl"
    foreign = json.dumps({"format": "other/thing", "version": 1}) + "\n"
    path.write_text(foreign)
    store = VerdictStore(str(tmp_path))
    assert store.load() == {}
    store.append(("m", "t"), True)  # silently dropped: appends disabled
    store.close()
    assert path.read_text() == foreign  # byte-identical

    future = json.dumps({"format": STORE_FORMAT, "version": STORE_VERSION + 1}) + "\n"
    path.write_text(future)
    store = VerdictStore(str(tmp_path))
    assert store.load() == {}
    store.close()
    assert path.read_text() == future


def test_merge_from_folds_replica_caches(tmp_path):
    a = VerdictStore(str(tmp_path / "a"))
    a.append(("m1", "t1"), True)
    a.close()
    b = VerdictStore(str(tmp_path / "b"))
    b.append(("m2", "t2"), False)
    b.close()

    merged = VerdictStore(str(tmp_path / "merged"))
    added = merged.merge_from([a.path, b.path])
    merged.close()
    assert added == 2
    assert VerdictStore(str(tmp_path / "merged")).load() == {
        ("m1", "t1"): True,
        ("m2", "t2"): False,
    }


def test_store_info_shapes(tmp_path):
    assert store_info(None) == {"enabled": False}
    store = VerdictStore(str(tmp_path))
    info = store_info(store)
    assert info["enabled"] is True
    assert info["path"].endswith("verdicts.jsonl")


def test_eviction_does_not_lose_persisted_entries(tmp_path):
    cache = VerdictCache.open(str(tmp_path), capacity=2)
    for key in _keys(10):
        cache.put(key, True)
    assert len(cache) == 2
    cache.close()
    # Every entry was appended on first sight, so a reload (with room)
    # recovers all of them.
    assert len(VerdictCache.open(str(tmp_path))) == 10


# ----------------------------------------------------------------------
# fault points
# ----------------------------------------------------------------------
def test_cache_get_fault_point_fires():
    faults.install("cache.get=raise*1")
    cache = VerdictCache()
    with pytest.raises(faults.InjectedFault):
        cache.get(("m", "t"))
    assert cache.get(("m", "t")) is None  # armed once only


def test_cache_persist_truncate_simulates_a_torn_flush(tmp_path):
    faults.install("cache.persist=truncate:40")
    store = VerdictStore(str(tmp_path), flush_every=1)
    for key in _keys(3):
        store.append(key, True)
    store.close()
    faults.clear()
    fresh = VerdictStore(str(tmp_path))
    recovered = fresh.load()
    # The torn file loads whatever survived, without raising.
    assert len(recovered) < 3


# ----------------------------------------------------------------------
# thread safety
# ----------------------------------------------------------------------
def test_concurrent_puts_and_gets_stay_consistent(tmp_path):
    cache = VerdictCache.open(str(tmp_path), capacity=256)
    keys = _keys(64)
    errors = []

    def worker(worker_id):
        try:
            for _ in range(50):
                for i, key in enumerate(keys):
                    cache.put(key, i % 2 == 0)
                    value = cache.get(key)
                    assert value is None or value is (i % 2 == 0)
        except BaseException as error:  # pragma: no cover - failure path
            errors.append(error)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    cache.close()
    assert not errors
    assert len(cache) == 64
    for i, key in enumerate(keys):
        assert cache.get(key) is (i % 2 == 0)
