"""Tests for the litmus text writer (and parser round trips)."""


from repro.checker.explicit import ExplicitChecker
from repro.core.catalog import ALPHA, IBM370, SC, TSO
from repro.generation.named_tests import L_TESTS, TEST_A, all_named_tests
from repro.generation.suite import no_dependency_suite
from repro.io.parser import parse_litmus
from repro.io.writer import litmus_to_text, write_litmus_file


def test_writer_output_contains_header_threads_and_condition():
    text = litmus_to_text(TEST_A)
    assert text.startswith('litmus "A"')
    assert "thread T1 {" in text and "thread T2 {" in text
    assert "exists r1 = 0 & r2 = 2 & r3 = 0" in text


def test_roundtrip_named_tests_preserve_verdicts():
    checker = ExplicitChecker()
    models = (SC, TSO, IBM370, ALPHA)
    for test in all_named_tests().values():
        reparsed = parse_litmus(litmus_to_text(test))
        assert reparsed.register_outcome() == test.register_outcome()
        for model in models:
            assert (
                checker.check(reparsed, model).allowed == checker.check(test, model).allowed
            ), f"{test.name} changed verdict after round trip under {model.name}"


def test_roundtrip_generated_suite_sample():
    sample = no_dependency_suite().tests()[:25]
    for test in sample:
        reparsed = parse_litmus(litmus_to_text(test))
        assert reparsed.register_outcome() == test.register_outcome()
        assert reparsed.num_memory_accesses() == test.num_memory_accesses()


def test_write_litmus_file(tmp_path):
    path = tmp_path / "a.litmus"
    write_litmus_file(TEST_A, path)
    assert path.read_text() == litmus_to_text(TEST_A)


def test_description_is_emitted_as_comment():
    text = litmus_to_text(L_TESTS[0])
    assert "# " in text
