"""Tests for the litmus text parser."""

import pytest

from repro.checker.explicit import is_allowed
from repro.core.catalog import SC, TSO
from repro.core.instructions import Branch, Fence, Load, Op, Store
from repro.io.parser import ParseError, parse_litmus, parse_litmus_file

SB_TEXT = """
litmus "SB"
# the classic store-buffering test
thread T1 {
  write X 1
  read Y r1
}
thread T2 {
  write Y 1
  read X r2
}
exists r1 = 0 & r2 = 0
"""


def test_parse_store_buffering():
    test = parse_litmus(SB_TEXT)
    assert test.name == "SB"
    assert test.num_threads() == 2
    assert test.register_outcome() == {"r1": 0, "r2": 0}
    assert is_allowed(test, TSO)
    assert not is_allowed(test, SC)


def test_parse_fence_and_kinds():
    text = """
litmus "fenced"
thread T1 {
  write X 1
  fence
  read Y r1
}
thread T2 {
  fence acquire
  read X r2
}
exists r1 = 0 & r2 = 0
"""
    test = parse_litmus(text)
    instructions = test.program.threads[0].instructions
    assert isinstance(instructions[1], Fence)
    assert test.program.threads[1].instructions[0].kind == "acquire"


def test_parse_dependency_idiom():
    text = """
litmus "dep"
thread T1 {
  read X r1
  let t1 = r1 - r1 + Y
  read [t1] r2
}
thread T2 {
  write Y 1
  write X 1
}
exists r1 = 1 & r2 = 0
"""
    test = parse_litmus(text)
    t1 = test.program.threads[0].instructions
    assert isinstance(t1[1], Op)
    assert isinstance(t1[2], Load)
    execution = test.execution()
    assert execution.data_dependent(execution.event(0, 0), execution.event(0, 2))
    assert execution.location_of(execution.event(0, 2)) == "Y"


def test_parse_branch_and_register_value_store():
    text = """
litmus "ctrl"
thread T1 {
  read X r1
  branch r1
  write Y r1 + 1
}
exists r1 = 0
"""
    test = parse_litmus(text)
    instructions = test.program.threads[0].instructions
    assert isinstance(instructions[1], Branch)
    assert isinstance(instructions[2], Store)
    execution = test.execution()
    assert execution.control_dependent(execution.event(0, 0), execution.event(0, 2))
    assert execution.value_of(execution.event(0, 2)) == 1


def test_parse_file(tmp_path):
    path = tmp_path / "sb.litmus"
    path.write_text(SB_TEXT)
    test = parse_litmus_file(path)
    assert test.name == "SB"


@pytest.mark.parametrize(
    "text, message",
    [
        ("thread T1 {\n write X 1\n}\nexists r1 = 0", "missing 'litmus"),
        ('litmus "t"\nexists r1 = 0', "no threads"),
        ('litmus "t"\nthread T1 {\n write X 1\n}\n', "missing 'exists'"),
        ('litmus "t"\nthread T1 {\n write X 1\nexists r1 = 0', "not closed"),
        ('litmus "t"\nthread T1 {\n bogus X 1\n}\nexists r1 = 0', "unknown statement"),
        ('litmus "t"\nthread T1 {\n read X r1\n}\nexists r1 = x', "form 'reg = value'"),
        ('litmus "t"\nthread T1 {\n read X r1\n}\nexists', "empty condition"),
        ('litmus "t"\nthread T1 {\n read X r1\n}\nexists r1 =', "malformed condition"),
        ('litmus "t"\nread X r1\nexists r1 = 0', "outside a thread"),
        ('litmus "t"\nthread T1 {\n read X r1 r2\n}\nexists r1 = 0', "exactly one destination"),
        ('litmus "t"\nthread T1 {\n let t1 r1\n}\nexists r1 = 0', "expected 'let"),
    ],
)
def test_parse_errors(text, message):
    with pytest.raises(ParseError, match=message):
        parse_litmus(text)


def test_parse_error_reports_line_numbers():
    try:
        parse_litmus('litmus "t"\nthread T1 {\n bogus\n}\nexists r1 = 0')
    except ParseError as error:
        assert error.line_number == 3
    else:  # pragma: no cover
        raise AssertionError("expected a ParseError")


def test_condition_must_cover_every_load_register():
    text = """
litmus "partial"
thread T1 {
  read X r1
  read Y r2
}
exists r1 = 0
"""
    with pytest.raises(ValueError, match="does not constrain"):
        parse_litmus(text)
