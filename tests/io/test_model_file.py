"""Tests for the ``.model`` text format (:mod:`repro.io.model_file`)."""

import pytest

from repro.core.catalog import TSO
from repro.core.model import MemoryModel
from repro.io import (
    ModelFileError,
    model_to_text,
    parse_model,
    parse_model_file,
    write_model_file,
)

TSO_TEXT = """\
# SPARC TSO, Section 2.4
model "MyTSO"
description "total store order"
predicates Read Write Fence SameAddr
formula (Write(x) & Write(y)) | Read(x) | Fence(x) | Fence(y)
"""


def test_parse_model_reads_all_directives():
    model = parse_model(TSO_TEXT)
    assert model.name == "MyTSO"
    assert model.description == "total store order"
    assert model.predicates.names() == ("Read", "Write", "Fence", "SameAddr")
    assert str(model.formula) == "(Write(x) & Write(y)) | Read(x) | Fence(x) | Fence(y)"
    # Semantically TSO: same formula, so same IR digest.
    from repro.compile import compile_model

    assert compile_model(model).digest == compile_model(TSO).digest


def test_quotes_are_optional_and_defaults_apply():
    model = parse_model("model Bare\nformula Fence(x)\n")
    assert model.name == "Bare"
    assert model.description == ""
    assert "DataDep" in model.predicates  # the standard set by default


def test_formula_continuation_lines():
    model = parse_model(
        "model Split\n"
        "formula (Write(x) & Write(y))\n"
        "    | Read(x)\n"
        "    | Fence(x) | Fence(y)\n"
    )
    assert str(model.formula) == "(Write(x) & Write(y)) | Read(x) | Fence(x) | Fence(y)"


def test_round_trip_through_text():
    text = model_to_text(TSO)
    rebuilt = parse_model(text)
    assert rebuilt == TSO
    assert model_to_text(rebuilt) == text


def test_file_round_trip(tmp_path):
    path = tmp_path / "tso.model"
    write_model_file(TSO, path)
    assert parse_model_file(path) == TSO


def test_callable_models_cannot_be_written():
    opaque = MemoryModel("opaque", lambda execution, x, y: True)
    with pytest.raises(ModelFileError, match="Python callable"):
        model_to_text(opaque)


@pytest.mark.parametrize(
    "text, message",
    [
        ("formula Fence(x)\n", "missing 'model'"),
        ("model A\n", "missing 'formula'"),
        ("model A\nmodel B\nformula Fence(x)\n", "duplicate 'model'"),
        ("model A\nformula Fence(x)\nformula Fence(y)\n", "duplicate 'formula'"),
        ("model A\npredicates Bogus\nformula Fence(x)\n", "unknown predicate 'Bogus'"),
        ("model A\nfrobnicate\nformula Fence(x)\n", "unknown directive"),
        ("model A\npredicates\nformula Fence(x)\n", "at least one name"),
    ],
)
def test_malformed_documents_raise_with_line_numbers(text, message):
    with pytest.raises(ModelFileError, match=message):
        parse_model(text)


def test_formula_errors_carry_position_and_snippet():
    with pytest.raises(ModelFileError) as info:
        parse_model("model A\nformula Write(x) & ) | Read(y)\n")
    rendered = str(info.value)
    assert "<string>:2:" in rendered
    assert "^" in rendered  # the DSL parser's caret rendering survives


def test_registry_resolves_model_paths_and_caches(tmp_path):
    from repro.api.registry import ModelRegistry, UnknownModelError

    path = tmp_path / "custom.model"
    path.write_text(TSO_TEXT)
    registry = ModelRegistry()
    resolved = registry.resolve(str(path))
    assert resolved.name == "MyTSO"
    assert registry.resolve(str(path)) is resolved  # cached by path

    restricted = ModelRegistry(allow_paths=False)
    with pytest.raises(UnknownModelError):
        restricted.resolve(str(path))


def test_registry_resolves_inline_model_documents():
    from repro.api.registry import ModelRegistry
    from repro.api.serialize import to_json

    registry = ModelRegistry(include_catalog=False)
    document = to_json(TSO)
    assert registry.resolve(document) == TSO
