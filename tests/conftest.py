"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

import pytest
from hypothesis import strategies as st

from repro.checker.explicit import ExplicitChecker
from repro.checker.reference import ReferenceChecker
from repro.checker.sat_checker import SatChecker
from repro.core.catalog import ALPHA, IBM370, PSO, RMO, SC, TSO
from repro.core.instructions import Fence, Load, Store
from repro.core.litmus import LitmusTest
from repro.core.parametric import ALLOWED_OPTIONS, ParametricModel
from repro.core.program import Program, Thread


# ----------------------------------------------------------------------
# fixtures
# ----------------------------------------------------------------------
@pytest.fixture(scope="session")
def explicit_checker() -> ExplicitChecker:
    return ExplicitChecker()


@pytest.fixture(scope="session")
def sat_checker() -> SatChecker:
    return SatChecker()


@pytest.fixture(scope="session")
def reference_checker() -> ReferenceChecker:
    return ReferenceChecker()


@pytest.fixture(scope="session")
def named_model_list():
    return [SC, TSO, IBM370, PSO, RMO, ALPHA]


# ----------------------------------------------------------------------
# hypothesis strategies
# ----------------------------------------------------------------------
def parametric_models() -> st.SearchStrategy[ParametricModel]:
    """Random models from the paper's parametric family."""
    return st.builds(
        ParametricModel,
        ww=st.sampled_from(ALLOWED_OPTIONS["ww"]),
        wr=st.sampled_from(ALLOWED_OPTIONS["wr"]),
        rw=st.sampled_from(ALLOWED_OPTIONS["rw"]),
        rr=st.sampled_from(ALLOWED_OPTIONS["rr"]),
    )


_LOCATIONS = ("X", "Y")


@st.composite
def small_litmus_tests(draw) -> LitmusTest:
    """Random small two-thread litmus tests (at most 2 accesses + 1 fence per thread).

    The tests are kept tiny so the factorial reference checker stays usable;
    read values are drawn from the values stores can write (0, 1, 2) so a
    reasonable fraction of the generated outcomes is feasible.
    """
    threads: List[Thread] = []
    read_values: Dict[Tuple[int, int], int] = {}
    for thread_index in range(2):
        length = draw(st.integers(min_value=1, max_value=2))
        instructions = []
        register_serial = 0
        for access_index in range(length):
            if access_index > 0 and draw(st.booleans()):
                instructions.append(Fence())
            location = draw(st.sampled_from(_LOCATIONS))
            if draw(st.booleans()):
                register = f"r{thread_index + 1}{register_serial}"
                register_serial += 1
                instructions.append(Load(register, location))
                read_values[(thread_index, len(instructions) - 1)] = draw(
                    st.integers(min_value=0, max_value=2)
                )
            else:
                value = draw(st.integers(min_value=1, max_value=2))
                instructions.append(Store(location, value))
        threads.append(Thread(f"T{thread_index + 1}", instructions))
    return LitmusTest("random", Program(threads), read_values)
