"""Tests for the batched checking engine (:mod:`repro.engine`)."""

import pytest

from repro.checker.explicit import ExplicitChecker
from repro.checker.reference import ReferenceChecker
from repro.checker.sat_checker import SatChecker
from repro.core.instructions import Load, Store
from repro.core.litmus import LitmusTest
from repro.core.parametric import model_space, parametric_model
from repro.core.program import Program, Thread
from repro.engine import (
    CheckEngine,
    EnumerationStrategy,
    ExplicitStrategy,
    IncrementalSatStrategy,
    LegacyCheckerStrategy,
    make_strategy,
)
from repro.generation.named_tests import L_TESTS, TEST_A

TESTS = [TEST_A] + list(L_TESTS)
MODELS = [parametric_model(name) for name in ("M4444", "M4144", "M4044", "M1044", "M1010")]


@pytest.fixture(scope="module")
def legacy_matrix():
    checker = ExplicitChecker()
    return {
        model.name: tuple(checker.check(test, model).allowed for test in TESTS)
        for model in MODELS
    }


# ----------------------------------------------------------------------
# strategy resolution
# ----------------------------------------------------------------------
def test_make_strategy_resolves_names_and_checkers():
    from repro.checker.reference import EnumerationChecker

    assert isinstance(make_strategy("explicit"), ExplicitStrategy)
    assert isinstance(make_strategy("enumeration"), EnumerationStrategy)
    assert isinstance(make_strategy("sat"), IncrementalSatStrategy)
    assert isinstance(make_strategy(ExplicitChecker()), ExplicitStrategy)
    assert isinstance(make_strategy(EnumerationChecker()), EnumerationStrategy)
    assert isinstance(make_strategy(SatChecker()), IncrementalSatStrategy)
    # A preprocessing SatChecker keeps its own per-check pipeline.
    assert isinstance(make_strategy(SatChecker(use_preprocessing=True)), LegacyCheckerStrategy)
    assert isinstance(make_strategy(ReferenceChecker()), LegacyCheckerStrategy)
    with pytest.raises(ValueError):
        make_strategy("bogus")
    with pytest.raises(TypeError):
        make_strategy(42)


def test_ensure_returns_existing_engine_unchanged():
    engine = CheckEngine("sat")
    assert CheckEngine.ensure(engine) is engine
    assert isinstance(CheckEngine.ensure(None).strategy, ExplicitStrategy)
    assert isinstance(CheckEngine.ensure("sat").strategy, IncrementalSatStrategy)


def test_engine_rejects_bad_jobs():
    with pytest.raises(ValueError):
        CheckEngine(jobs=0)


# ----------------------------------------------------------------------
# verdict matrices
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["explicit", "enumeration", "sat"])
def test_matrix_matches_legacy_checkers(backend, legacy_matrix):
    engine = CheckEngine(backend)
    assert engine.verdict_matrix(MODELS, TESTS) == legacy_matrix


def test_matrix_agrees_with_reference_checker_strategy(legacy_matrix):
    engine = CheckEngine(ReferenceChecker(max_events=9))
    assert engine.verdict_matrix(MODELS, TESTS) == legacy_matrix


def test_parallel_matrix_matches_serial(legacy_matrix):
    engine = CheckEngine("explicit", jobs=2)
    assert engine.verdict_matrix(MODELS, TESTS) == legacy_matrix
    # Worker counters are folded back into the parent engine.
    assert engine.stats.checks_performed == len(MODELS) * len(TESTS)
    assert engine.stats.executions_evaluated == len(TESTS)


# ----------------------------------------------------------------------
# caching and statistics
# ----------------------------------------------------------------------
def test_each_execution_is_evaluated_exactly_once():
    engine = CheckEngine("explicit")
    engine.verdict_matrix(MODELS, TESTS)
    assert engine.stats.executions_evaluated == len(TESTS)
    assert engine.stats.candidate_spaces_built == len(TESTS)
    assert engine.stats.checks_performed == len(MODELS) * len(TESTS)
    assert engine.stats.context_cache_hits == len(TESTS) * (len(MODELS) - 1)
    # A second sweep over the same suite reuses every context.
    engine.verdict_matrix(MODELS, TESTS)
    assert engine.stats.executions_evaluated == len(TESTS)
    assert engine.stats.context_cache_hits == len(TESTS) * (2 * len(MODELS) - 1)


def test_po_edge_cache_hits_on_repeated_checks():
    engine = CheckEngine("explicit")
    engine.check(TEST_A, MODELS[0])
    assert engine.stats.po_edge_cache_hits == 0
    engine.check(TEST_A, MODELS[0])  # same (test, model): cached po edges
    assert engine.stats.po_edge_cache_hits == 1
    engine.check(TEST_A, MODELS[1])  # different model: a fresh edge set
    assert engine.stats.po_edge_cache_hits == 1


def test_enumeration_strategy_counts_coherence_cache_hits():
    engine = CheckEngine("enumeration")
    engine.check(TEST_A, MODELS[0])
    assert engine.stats.coherence_cache_hits == 0  # first sweep builds the maps
    engine.check(TEST_A, MODELS[1])
    engine.check(TEST_A, MODELS[1])
    assert engine.stats.coherence_cache_hits == 2
    assert engine.stats.po_edge_cache_hits == 1  # the repeated model only


def test_stats_describe_mentions_cache_hit_counters():
    engine = CheckEngine("enumeration")
    engine.check(TEST_A, MODELS[0])
    engine.check(TEST_A, MODELS[0])
    text = engine.stats.describe()
    assert "po-edge cache hits" in text
    assert "coherence cache hits" in text


def test_sat_engine_counts_solver_calls():
    engine = CheckEngine("sat")
    engine.verdict_matrix(MODELS, TESTS)
    assert engine.stats.solver_calls == len(MODELS) * len(TESTS)


def test_stats_snapshot_and_since():
    engine = CheckEngine("explicit")
    engine.check(TEST_A, MODELS[0])
    before = engine.stats.snapshot()
    engine.check(TEST_A, MODELS[1])
    delta = engine.stats.since(before)
    assert delta.checks_performed == 1
    assert delta.executions_evaluated == 0
    assert delta.context_cache_hits == 1


def test_stats_describe_mentions_sat_counters_only_when_present():
    explicit = CheckEngine("explicit")
    explicit.check(TEST_A, MODELS[0])
    assert "SAT calls" not in explicit.stats.describe()
    sat = CheckEngine("sat")
    sat.check(TEST_A, MODELS[0])
    assert "SAT calls" in sat.stats.describe()


# ----------------------------------------------------------------------
# edge cases
# ----------------------------------------------------------------------
def infeasible_test() -> LitmusTest:
    """A load observing a value no store writes and no initial value provides."""
    program = Program(
        [
            Thread("T1", [Store("X", 1)]),
            Thread("T2", [Load("r1", "X")]),
        ]
    )
    return LitmusTest("infeasible", program, {(1, 0): 7})


@pytest.mark.parametrize("backend", ["explicit", "sat"])
def test_infeasible_outcome_is_forbidden_under_every_model(backend):
    engine = CheckEngine(backend)
    test = infeasible_test()
    for model in MODELS:
        assert engine.check(test, model) is False
    legacy = ExplicitChecker().check(test, MODELS[0])
    assert not legacy.allowed


def test_full_36_model_space_agrees_across_backends():
    models = model_space(include_data_dependencies=False)
    explicit = CheckEngine("explicit").verdict_matrix(models, TESTS)
    sat = CheckEngine("sat").verdict_matrix(models, TESTS)
    assert explicit == sat


# ----------------------------------------------------------------------
# compile layer integration: digest-keyed caches and compile/CSE counters
# ----------------------------------------------------------------------
def test_compile_counters_are_deterministic_per_engine():
    engine = CheckEngine("explicit")
    engine.verdict_matrix(MODELS, TESTS)
    assert engine.stats.models_compiled == len(MODELS)
    # Every later resolution of the same models hits the engine's cache.
    assert engine.stats.compile_cache_hits == len(MODELS) * (len(TESTS) - 1)
    assert engine.stats.ir_nodes_created > 0
    # A fresh engine over the same inputs reports identical counters no
    # matter what the process-global compile cache already holds.
    other = CheckEngine("explicit")
    other.verdict_matrix(MODELS, TESTS)
    assert other.stats.models_compiled == engine.stats.models_compiled
    assert other.stats.ir_nodes_created == engine.stats.ir_nodes_created
    assert other.stats.ir_cse_hits == engine.stats.ir_cse_hits


def test_cross_model_cse_is_counted():
    from repro.core.parametric import model_space

    engine = CheckEngine("explicit")
    engine.precompile(model_space(include_data_dependencies=True))
    assert engine.stats.models_compiled == 90
    # The 90 models share almost all subformula structure.
    assert engine.stats.ir_cse_hits > engine.stats.ir_nodes_created


def test_digest_keyed_caches_survive_model_reregistration():
    """A structurally equal model under a new object (re-registration, a
    serve client resending a definition) hits the warm po-edge caches."""
    from repro.core.model import MemoryModel

    first = MemoryModel("TSO-v1", "(Write(x) & Write(y)) | Read(x) | Fence(x) | Fence(y)")
    second = MemoryModel("TSO-v2", "(Write(x) & Write(y)) | Read(x) | Fence(x) | Fence(y)")
    engine = CheckEngine("explicit")
    assert engine.check(TEST_A, first) == engine.check(TEST_A, second)
    assert engine.stats.models_compiled == 1  # one semantic digest
    assert engine.stats.compile_cache_hits == 1
    assert engine.stats.po_edge_cache_hits == 1  # second check reused the edges


def test_stats_describe_mentions_compile_counters():
    engine = CheckEngine("explicit")
    engine.check(TEST_A, MODELS[0])
    assert "models compiled" in engine.stats.describe()
