"""Engine + verdict cache: interposition counters, bit-identical verdicts
with the cache on vs off (on both kernel legs), and persistence."""

import pytest

from repro.cache import VerdictCache
from repro.core.catalog import named_models
from repro.core.model import MemoryModel
from repro.engine.engine import CheckEngine
from repro.generation.named_tests import L_TESTS

KERNEL_LEGS = ("bigint", "python")


def _models():
    catalog = named_models()
    return [catalog["SC"], catalog["TSO"], catalog["RMO"]]


@pytest.mark.parametrize("kernel", KERNEL_LEGS)
def test_verdicts_bit_identical_with_cache_on_and_off(kernel):
    plain = CheckEngine(kernel=kernel)
    cached = CheckEngine(kernel=kernel, verdict_cache=VerdictCache())
    for model in _models():
        for test in L_TESTS:
            expected = plain.check(test, model)
            assert cached.check(test, model) is expected
            # warm repeat: answered from the cache, still identical
            assert cached.check(test, model) is expected


@pytest.mark.parametrize("kernel", KERNEL_LEGS)
def test_check_column_bit_identical_with_cache_on_and_off(kernel):
    models = _models()
    plain = CheckEngine(kernel=kernel)
    cached = CheckEngine(kernel=kernel, verdict_cache=VerdictCache())
    for test in L_TESTS:
        expected = plain.check_column(test, models)
        assert cached.check_column(test, models) == expected
        assert cached.check_column(test, models) == expected  # all-hit path


def test_hit_and_miss_counters():
    cache = VerdictCache()
    engine = CheckEngine(verdict_cache=cache)
    model = named_models()["TSO"]
    test = L_TESTS[0]
    assert cache.key_for(test, model) is not None  # cacheable pair

    engine.check(test, model)
    assert engine.stats.verdict_cache_misses == 1
    assert engine.stats.verdict_cache_hits == 0

    engine.check(test, model)
    assert engine.stats.verdict_cache_hits == 1
    assert engine.stats.checks_performed == 2


def test_column_hit_counters_count_whole_columns():
    models = _models()
    engine = CheckEngine(verdict_cache=VerdictCache())
    test = L_TESTS[0]
    engine.check_column(test, models)
    assert engine.stats.verdict_cache_misses == len(models)
    engine.check_column(test, models)
    assert engine.stats.verdict_cache_hits == len(models)


def test_uncacheable_model_bypasses_the_cache():
    cache = VerdictCache()
    engine = CheckEngine(verdict_cache=cache)
    opaque = MemoryModel("opaque", lambda execution, x, y: True)
    engine.check(L_TESTS[0], opaque)
    engine.check(L_TESTS[0], opaque)
    assert engine.stats.verdict_cache_hits == 0
    assert engine.stats.verdict_cache_misses == 0
    assert len(cache) == 0


def test_persisted_counter_requires_a_store(tmp_path):
    memory_only = CheckEngine(verdict_cache=VerdictCache())
    memory_only.check(L_TESTS[0], named_models()["TSO"])
    assert memory_only.stats.verdict_cache_persisted == 0

    persistent = CheckEngine(verdict_cache=VerdictCache.open(str(tmp_path)))
    persistent.check(L_TESTS[0], named_models()["TSO"])
    assert persistent.stats.verdict_cache_persisted == 1
    persistent.verdict_cache.close()


def test_warm_verdicts_survive_a_simulated_restart(tmp_path):
    model = named_models()["TSO"]
    probe = VerdictCache()
    # Only the canonicalizable Load/Store/Fence fragment is cacheable;
    # the dependency-idiom L tests legitimately bypass the cache.
    cacheable = [test for test in L_TESTS if probe.test_digest(test) is not None]
    assert cacheable  # the fragment is non-trivial

    first = CheckEngine(verdict_cache=VerdictCache.open(str(tmp_path)))
    expected = [first.check(test, model) for test in cacheable]
    first.verdict_cache.close()

    # "Restart": fresh engine, fresh cache object, same directory.
    second = CheckEngine(verdict_cache=VerdictCache.open(str(tmp_path)))
    assert [second.check(test, model) for test in cacheable] == expected
    assert second.stats.verdict_cache_hits == len(cacheable)
    assert second.stats.executions_evaluated == 0  # nothing re-evaluated


def test_stats_as_dict_matches_dataclass_fields():
    import dataclasses

    engine = CheckEngine()
    assert engine.stats.as_dict() == dataclasses.asdict(engine.stats)


def test_opaque_legacy_checkers_skip_the_cache():
    from repro.checker.result import CheckResult

    class HomebrewChecker:
        # No recognised strategy name: its semantics are whatever it does,
        # so its verdicts must never enter (or come from) the shared cache.
        def check(self, test, model, test_name=None):
            return CheckResult(allowed=True, test_name="", model_name="")

    engine = CheckEngine(backend=HomebrewChecker(), verdict_cache=VerdictCache())
    assert not engine._cacheable
    engine.check(L_TESTS[0], named_models()["TSO"])
    assert engine.stats.verdict_cache_misses == 0
