"""The synthesis acceptance cases over the paper's 90-model space.

The three outcomes the CLI promises — a complete verdict vector pins the
unique model, an inconsistent vector yields a minimal conflict core, an
ambiguous prefix yields distinguishing-test suggestions — each checked
with the enumeration and SAT strategies agreeing bit-for-bit.
"""

import dataclasses

import pytest

from repro.api.registry import UnknownModelError, canonical_space
from repro.api.requests import SynthesizeRequest
from repro.api.session import Session
from repro.engine.engine import CheckEngine, EngineStats
from repro.synth import SynthesisEngine, SynthesisResult
from repro.synth.engine import SYNTH_BACKENDS

TARGET = "M4044"


@pytest.fixture(scope="module")
def session():
    return Session()


@pytest.fixture(scope="module")
def synth(session):
    return session.synthesis_engine("paper90")


@pytest.fixture(scope="module")
def target_row(session, synth):
    """The complete (test, verdict) vector of the target model."""
    target = session.models.resolve(TARGET)
    return [
        (test, session.engine.check(test, target))
        for test in synth.comparison_tests
    ]


def _comparable(result: SynthesisResult) -> SynthesisResult:
    """Strip the fields that legitimately differ between strategies."""
    return dataclasses.replace(result, backend="", stats=None)


def _both(synth, observations, **kwargs):
    enum = synth.synthesize(observations, backend="enum", **kwargs)
    sat = synth.synthesize(observations, backend="sat", **kwargs)
    assert _comparable(enum) == _comparable(sat)
    return enum


# ----------------------------------------------------------------------
# the three acceptance outcomes
# ----------------------------------------------------------------------
def test_complete_vector_identifies_the_unique_model(synth, target_row):
    result = _both(synth, target_row)
    assert result.models_considered == 90
    assert result.unique_model == TARGET
    assert result.weakest == result.strongest == (TARGET,)
    assert len(result.witnesses) == 89  # every other model has a witness
    assert not result.conflict_core and not result.suggestions


def test_inconsistent_vector_yields_a_minimal_conflict_core(synth, target_row):
    flipped = [(target_row[0][0], not target_row[0][1])] + target_row[1:]
    result = _both(synth, flipped)
    assert not result.consistent
    assert len(result.witnesses) == 90
    assert result.conflict_core
    names = [test.name for test, _ in flipped]
    assert all(name in names for name in result.conflict_core)

    # Irreducibility: the core alone still excludes every model, and
    # dropping any single member readmits at least one.
    by_name = {test.name: (test, verdict) for test, verdict in flipped}
    core = [by_name[name] for name in result.conflict_core]
    assert not synth.synthesize(core, backend="enum", suggest_tests=0).consistent
    for skip in range(len(core)):
        reduced = core[:skip] + core[skip + 1 :]
        readmitted = synth.synthesize(reduced, backend="enum", suggest_tests=0)
        assert readmitted.consistent, f"core member {core[skip][0].name} is redundant"


def test_ambiguous_prefix_suggests_distinguishing_tests(synth, target_row):
    result = _both(synth, target_row[:3])
    assert len(result.consistent_models) > 1
    assert TARGET in result.consistent_models
    assert result.weakest and result.strongest
    assert result.suggestions, "survivors differ, so a test must split them"
    first = result.suggestions[0]
    assert first.separates_pairs > 0
    assert first.allowed_models > 0 and first.forbidden_models > 0
    assert first.allowed_models + first.forbidden_models == len(
        result.consistent_models
    )
    # Suggestions come from the comparison suite, never repeat, and are
    # capped by suggest_tests.
    names = [suggestion.test for suggestion in result.suggestions]
    assert len(set(names)) == len(names) <= 3
    capped = synth.synthesize(target_row[:3], backend="enum", suggest_tests=1)
    assert len(capped.suggestions) == 1
    assert capped.suggestions[0] == first


def test_no_observations_means_everything_is_consistent(synth):
    result = _both(synth, [], suggest_tests=2)
    assert len(result.consistent_models) == 90
    assert not result.witnesses and not result.conflict_core
    assert result.suggestions  # the whole space still splits on some test


# ----------------------------------------------------------------------
# session dispatch and space aliases
# ----------------------------------------------------------------------
def test_session_dispatch_accepts_space_aliases(session, target_row):
    request = SynthesizeRequest(
        observations=tuple(
            {"test": test.name, "allowed": verdict}
            for test, verdict in target_row
            if test.name.startswith("L")
        ),
        space="paper90",
        suggest_tests=2,
    )
    result = session.run(request)
    assert isinstance(result, SynthesisResult)
    assert result.space == "deps"
    assert TARGET in result.consistent_models


def test_space_aliases_resolve_and_unknowns_fail():
    assert canonical_space("paper90") == "deps"
    assert canonical_space("paper36") == "no_deps"
    assert canonical_space("deps") == "deps"
    with pytest.raises(UnknownModelError, match="paper90"):
        canonical_space("paper180")


def test_synthesis_engines_are_cached_per_space(session):
    assert session.synthesis_engine("paper90") is session.synthesis_engine("deps")
    assert session.synthesis_engine("paper36") is not session.synthesis_engine("deps")


# ----------------------------------------------------------------------
# backends and stats
# ----------------------------------------------------------------------
def test_backend_resolution():
    enum_engine = SynthesisEngine([], [], engine=CheckEngine(backend="explicit"))
    assert enum_engine.resolve_backend("auto") == "enum"
    sat_engine = SynthesisEngine([], [], engine=CheckEngine(backend="sat"))
    assert sat_engine.resolve_backend("auto") == "sat"
    for explicit in ("enum", "sat"):
        assert enum_engine.resolve_backend(explicit) == explicit
    with pytest.raises(ValueError, match="unknown synthesis backend"):
        enum_engine.resolve_backend("cnf")
    assert set(SYNTH_BACKENDS) == {"enum", "sat", "auto"}


def test_sat_backend_groups_models_by_po_mask(synth, target_row):
    result = synth.synthesize(target_row[:5], backend="sat")
    stats = result.stats
    assert stats.synth_runs == 1
    assert 0 < stats.synth_solver_calls <= 5 * 90
    # Mask grouping is the point: far fewer solver calls than checks.
    assert stats.synth_group_hits > 0
    assert stats.synth_solver_calls + stats.synth_group_hits == 5 * 90


def test_synth_counters_flow_through_merge_since_and_describe():
    base = EngineStats(synth_runs=2, synth_solver_calls=7, synth_group_hits=11)
    merged = EngineStats()
    merged.merge(base.as_dict())
    assert merged.synth_runs == 2
    assert merged.synth_solver_calls == 7
    delta = base.since(EngineStats(synth_runs=1))
    assert delta.synth_runs == 1
    assert delta.synth_group_hits == 11
    assert "2 synthesis runs" in base.describe()
    assert "7 synthesis SAT calls" in base.describe()
    assert base.as_dict()["synth_group_hits"] == 11
