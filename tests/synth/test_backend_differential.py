"""Differential testing: the enum and SAT synthesis strategies must agree.

Random observation subsets — true rows of the 90-model × template-suite
verdict matrix, with optional flips to produce inconsistent or ambiguous
inputs — must yield identical consistent sets, weakest/strongest models,
witnesses, conflict cores, and suggestions from both strategies.  Only the
``backend`` label and the engine counters may differ.
"""

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api.registry import ModelRegistry, TestRegistry
from repro.engine.engine import CheckEngine
from repro.generation.named_tests import L_TESTS
from repro.synth import SynthesisEngine

_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@pytest.fixture(scope="module")
def harness():
    """One warm engine, the 90-model space, and its true verdict matrix."""
    models = ModelRegistry().space("deps")
    suite = TestRegistry().suite("standard")
    engine = CheckEngine()
    synth = SynthesisEngine(
        models,
        list(L_TESTS),  # a small dominance suite keeps examples fast
        engine=engine,
        preferred_tests=L_TESTS,
        space="deps",
    )
    matrix = {
        test.name: engine.check_column(test, models, retain=True) for test in suite
    }
    return synth, suite, matrix, [model.name for model in models]


def _strip(result):
    return dataclasses.replace(result, backend="", stats=None)


@given(data=st.data())
@_SETTINGS
def test_enum_and_sat_agree_on_random_observation_subsets(harness, data):
    synth, suite, matrix, model_names = harness
    model = data.draw(st.sampled_from(model_names), label="observed model")
    indices = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=len(suite) - 1),
            min_size=1,
            max_size=8,
            unique=True,
        ),
        label="test subset",
    )
    flips = data.draw(
        st.lists(st.booleans(), min_size=len(indices), max_size=len(indices)),
        label="flips",
    )
    row = [model_names.index(model)]
    observations = [
        (suite[i], matrix[suite[i].name][row[0]] ^ flip)
        for i, flip in zip(indices, flips)
    ]

    enum = synth.synthesize(observations, backend="enum", suggest_tests=3)
    sat = synth.synthesize(observations, backend="sat", suggest_tests=3)

    assert enum.backend == "enum" and sat.backend == "sat"
    assert _strip(enum) == _strip(sat)

    # Unflipped rows must keep the observed model consistent; the verdict
    # columns themselves must match the precomputed matrix.
    if not any(flips):
        assert model in enum.consistent_models
    for (test, want), index in zip(observations, indices):
        for name in enum.consistent_models:
            m = model_names.index(name)
            assert matrix[test.name][m] == want


@given(data=st.data())
@_SETTINGS
def test_witnesses_and_cores_are_sound_for_both_strategies(harness, data):
    synth, suite, matrix, model_names = harness
    indices = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=len(suite) - 1),
            min_size=2,
            max_size=6,
            unique=True,
        ),
        label="test subset",
    )
    verdicts = data.draw(
        st.lists(st.booleans(), min_size=len(indices), max_size=len(indices)),
        label="verdicts",
    )
    observations = [(suite[i], want) for i, want in zip(indices, verdicts)]

    for backend in ("enum", "sat"):
        result = synth.synthesize(observations, backend=backend, suggest_tests=0)
        # Every witness quotes a real contradiction against the true matrix.
        by_name = {test.name: want for test, want in observations}
        for witness in result.witnesses:
            m = model_names.index(witness.model)
            assert witness.observed == by_name[witness.test]
            assert witness.predicted == matrix[witness.test][m]
            assert witness.predicted != witness.observed
        # Witnesses and consistent models partition the space.
        assert len(result.witnesses) + len(result.consistent_models) == len(
            model_names
        )
        if not result.consistent:
            assert result.conflict_core
            core = set(result.conflict_core)
            assert core <= set(by_name)
