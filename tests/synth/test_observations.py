"""Observation parsing, validation, and JSON round trips."""

import pytest

from repro import TEST_A, explore_models
from repro.core.catalog import SC, TSO
from repro.core.litmus import LitmusTest
from repro.generation.named_tests import L_TESTS
from repro.synth import (
    Observation,
    ObservationError,
    ObservationSet,
    VerdictDocument,
    observations_from_document,
    verdict_document_from_exploration,
)


# ----------------------------------------------------------------------
# Observation
# ----------------------------------------------------------------------
def test_observation_rejects_non_boolean_verdicts():
    for bad in (1, 0, "true", None, [True]):
        with pytest.raises(ObservationError):
            Observation(test="L1", allowed=bad)


def test_observation_labels_each_spec_kind():
    assert Observation(test=TEST_A, allowed=True).label() == TEST_A.name
    assert Observation(test="L1", allowed=True).label() == "L1"
    assert Observation(test={"name": "X"}, allowed=True).label() == "X"
    inline = "T0: St X 1\nT1: Ld X r1\nexists r1 = 0"
    assert Observation(test=inline, allowed=False).label() == "<inline test>"


# ----------------------------------------------------------------------
# ObservationSet
# ----------------------------------------------------------------------
def test_observation_set_roundtrips_exactly():
    observations = ObservationSet(
        (
            Observation(test="L1", allowed=True),
            Observation(test=TEST_A, allowed=False),
        )
    )
    document = observations.to_json()
    assert document["schema"] == "repro/observations"
    rebuilt = ObservationSet.from_json(document)
    assert rebuilt.to_json() == document
    assert len(rebuilt) == 2
    # The embedded litmus_test document carries the full program.
    assert rebuilt.observations[1].test["name"] == TEST_A.name


def test_observation_set_coerces_plain_dicts():
    observations = ObservationSet(({"test": "L1", "allowed": True},))
    assert isinstance(observations.observations[0], Observation)
    assert observations.observations[0].allowed is True


@pytest.mark.parametrize(
    "entry",
    [
        {"test": "L1"},  # missing allowed
        {"allowed": True},  # missing test
        {"test": "L1", "allowed": True, "extra": 1},  # unknown field
        "L1",  # not an object
        {"test": "L1", "allowed": "yes"},  # non-bool verdict
    ],
)
def test_malformed_observation_entries_are_rejected(entry):
    document = {
        "schema": "repro/observations",
        "schema_version": _schema_version(),
        "observations": [entry],
    }
    with pytest.raises(ObservationError):
        ObservationSet.from_json(document)


def test_observations_field_must_be_an_array():
    document = {
        "schema": "repro/observations",
        "schema_version": _schema_version(),
        "observations": {"test": "L1", "allowed": True},
    }
    with pytest.raises(ObservationError):
        ObservationSet.from_json(document)


def _schema_version():
    from repro.api.serialize import SCHEMA_VERSION

    return SCHEMA_VERSION


# ----------------------------------------------------------------------
# VerdictDocument
# ----------------------------------------------------------------------
def _small_matrix():
    result = explore_models([SC, TSO], list(L_TESTS))
    return verdict_document_from_exploration(result, space="deps"), result


def test_verdict_document_roundtrips_exactly():
    matrix, result = _small_matrix()
    document = matrix.to_json()
    assert document["schema"] == "repro/verdicts"
    assert document["space"] == "deps"
    rebuilt = VerdictDocument.from_json(document)
    assert rebuilt.to_json() == document
    assert rebuilt.model_names() == list(result.vectors)


def test_verdict_document_rows_embed_full_tests():
    matrix, result = _small_matrix()
    row = matrix.row("TSO")
    assert len(row) == len(L_TESTS)
    for observation, test, verdict in zip(row, matrix.tests, result.vectors["TSO"]):
        assert isinstance(observation.test, LitmusTest)
        assert observation.test == test
        assert observation.allowed == verdict


def test_verdict_document_rejects_ragged_vectors():
    with pytest.raises(ObservationError):
        VerdictDocument(space="deps", tests=tuple(L_TESTS), vectors={"M": (True,)})


def test_verdict_document_row_names_available_models():
    matrix, _ = _small_matrix()
    with pytest.raises(ObservationError, match="SC, TSO"):
        matrix.row("NoSuchModel")


# ----------------------------------------------------------------------
# observations_from_document
# ----------------------------------------------------------------------
def test_from_document_accepts_all_three_kinds():
    matrix, result = _small_matrix()

    direct = observations_from_document(matrix.row("SC").to_json())
    from_verdicts = observations_from_document(matrix.to_json(), as_model="SC")
    from_exploration = observations_from_document(result.to_json(), as_model="SC")
    assert (
        [(o.label(), o.allowed) for o in from_verdicts]
        == [(o.label(), o.allowed) for o in from_exploration]
    )
    assert [o.allowed for o in direct] == [o.allowed for o in from_verdicts]


def test_from_document_as_model_misuse_is_explained():
    matrix, _ = _small_matrix()
    with pytest.raises(ObservationError, match="as_model only applies"):
        observations_from_document(matrix.row("SC").to_json(), as_model="SC")
    with pytest.raises(ObservationError, match="pass\nas_model|as_model"):
        observations_from_document(matrix.to_json())
    with pytest.raises(ObservationError):
        observations_from_document(matrix.to_json(), as_model="Nope")


def test_from_document_rejects_unrelated_kinds():
    from repro.api.serialize import test_to_json

    with pytest.raises(ObservationError, match="litmus_test"):
        observations_from_document(test_to_json(TEST_A))
