"""Tests for model-space exploration (the Figure 4 machinery).

The full 36-model dependency-free exploration runs in a couple of seconds
with the explicit checker, so it is exercised directly here; the 90-model
space is covered by the benchmark suite.
"""

import pytest

from repro.comparison.compare import Relation
from repro.comparison.exploration import explore_models
from repro.core.parametric import model_space, parametric_model
from repro.generation.named_tests import L_TESTS
from repro.generation.suite import no_dependency_suite


@pytest.fixture(scope="module")
def exploration():
    models = model_space(include_data_dependencies=False)
    suite = no_dependency_suite()
    return explore_models(models, suite.tests(), preferred_tests=L_TESTS)


def test_explores_36_models(exploration):
    assert len(exploration.models) == 36
    assert exploration.checks_performed > 0


def test_equivalent_pairs_differ_only_in_same_address_write_read(exploration):
    """Every equivalent pair differs only in the wr digit (0 vs 1), as in the paper."""
    pairs = exploration.equivalent_pairs()
    assert len(pairs) == 6
    for first, second in pairs:
        # Names are M{ww}{wr}{rw}{rr}: the ww, rw and rr digits agree and the
        # wr digit is 0 (always reorder) in one model and 1 (only different
        # addresses) in the other.
        assert first[1] == second[1]
        assert first[3:] == second[3:]
        assert {first[2], second[2]} == {"0", "1"}


def test_figure_4_grouped_nodes_are_equivalent(exploration):
    """The doubled-up boxes of Figure 4."""
    for first, second in [
        ("M1010", "M1110"),
        ("M4010", "M4110"),
        ("M1011", "M1111"),
        ("M4011", "M4111"),
    ]:
        assert exploration.relation(first, second) is Relation.EQUIVALENT


def test_sc_is_the_unique_strongest_model(exploration):
    assert exploration.strongest_models() == ["M4444"]


def test_rmo_like_model_is_the_unique_weakest(exploration):
    assert exploration.weakest_models() == ["M1010"]


def test_known_strength_relations(exploration):
    # TSO (M4044) is stronger than PSO (M1044), weaker than SC (M4444).
    assert exploration.relation("M4044", "M1044") is Relation.STRONGER
    assert exploration.relation("M4044", "M4444") is Relation.WEAKER
    # IBM370 (M4144) is stronger than TSO (M4044).
    assert exploration.relation("M4144", "M4044") is Relation.STRONGER
    # PSO relaxes strictly more than IBM370, so it is weaker.
    assert exploration.relation("M1044", "M4144") is Relation.WEAKER
    # PSO and an IBM370 variant with relaxed reads are incomparable.
    assert exploration.relation("M1044", "M4140") is Relation.INCOMPARABLE


def test_hasse_edges_point_weaker_to_stronger(exploration):
    for edge in exploration.hasse_edges:
        assert exploration.relation(edge.weaker, edge.stronger) is Relation.WEAKER
        assert edge.tests, "every Hasse edge must have a distinguishing test"


def test_hasse_edges_prefer_the_nine_tests(exploration):
    labelled = [edge for edge in exploration.hasse_edges if edge.preferred_tests]
    assert labelled, "the L tests should label most edges"
    for edge in labelled:
        assert set(edge.preferred_tests) <= {test.name for test in L_TESTS}
        assert edge.label


def test_class_lookup_and_representative(exploration):
    assert "M1110" in exploration.class_of("M1010")
    assert exploration.representative("M1110") == "M1010"
    with pytest.raises(KeyError):
        exploration.class_of("M9999")


def test_distinguishing_tests_between_tso_and_ibm370(exploration):
    names = exploration.distinguishing_tests("M4044", "M4144")
    assert names  # L8-shaped tests distinguish them
    assert "L8" in names


def test_exploration_of_a_small_subset_is_consistent_with_pairwise():
    models = [parametric_model(name) for name in ("M4444", "M4044", "M1044", "M4144")]
    suite = no_dependency_suite()
    result = explore_models(models, suite.tests(), preferred_tests=L_TESTS)
    assert result.relation("M4444", "M4044") is Relation.STRONGER
    assert len(result.equivalence_classes) == 4
    graph = result.stronger_graph()
    assert graph.has_edge("M4044", "M4444")
    assert graph.has_edge("M1044", "M4044")


def test_exploration_reports_engine_stats(exploration):
    """Each suite test's execution is evaluated exactly once per exploration."""
    stats = exploration.stats
    assert stats is not None
    assert stats.executions_evaluated == len(exploration.tests)
    assert stats.checks_performed == exploration.checks_performed
    assert stats.checks_performed == len(exploration.models) * len(exploration.tests)
    assert stats.context_cache_hits == len(exploration.tests) * (len(exploration.models) - 1)


def test_exploration_is_identical_on_both_engine_backends():
    models = [parametric_model(name) for name in ("M4444", "M4044", "M1044", "M4144", "M1010")]
    suite = no_dependency_suite().tests()
    explicit = explore_models(models, suite, checker="explicit", preferred_tests=L_TESTS)
    sat = explore_models(models, suite, checker="sat", preferred_tests=L_TESTS)
    assert explicit.vectors == sat.vectors
    assert explicit.equivalence_classes == sat.equivalence_classes
    assert explicit.hasse_edges == sat.hasse_edges
    assert sat.stats.solver_calls == len(models) * len(explicit.tests)


def test_exploration_with_jobs_matches_serial():
    models = [parametric_model(name) for name in ("M4444", "M4044", "M1044", "M4144")]
    serial = explore_models(models, L_TESTS, preferred_tests=L_TESTS)
    parallel = explore_models(models, L_TESTS, preferred_tests=L_TESTS, jobs=2)
    assert parallel.vectors == serial.vectors
    assert parallel.hasse_edges == serial.hasse_edges
    assert parallel.stats.executions_evaluated == serial.stats.executions_evaluated
