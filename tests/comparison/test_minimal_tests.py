"""Tests for minimal distinguishing test sets (the paper's nine tests)."""

import pytest

from repro.comparison.minimal_tests import (
    find_minimal_distinguishing_set,
    verify_distinguishing_set,
)
from repro.core.parametric import model_space, parametric_model
from repro.generation.named_tests import L_TESTS
from repro.generation.suite import no_dependency_suite


@pytest.fixture(scope="module")
def dep_free_models():
    return model_space(include_data_dependencies=False)


@pytest.fixture(scope="module")
def dep_free_suite():
    return no_dependency_suite().tests()


def test_l_tests_distinguish_every_non_equivalent_pair(dep_free_models, dep_free_suite):
    """Section 4.2: the nine tests are sufficient for the whole space."""
    result = verify_distinguishing_set(dep_free_models, L_TESTS, dep_free_suite)
    assert result.complete
    assert result.total_pairs > 0
    assert result.covered_pairs == result.total_pairs


def test_a_single_test_is_not_sufficient(dep_free_models, dep_free_suite):
    result = verify_distinguishing_set(dep_free_models, [L_TESTS[0]], dep_free_suite)
    assert not result.complete
    assert result.uncovered


def test_greedy_cover_over_l_tests_is_small_and_complete(dep_free_models):
    result = find_minimal_distinguishing_set(dep_free_models, L_TESTS)
    assert result.complete
    # Without dependencies the dependent tests L4/L6 are never needed.
    assert len(result.test_names) <= 9
    assert set(result.test_names) <= {test.name for test in L_TESTS}


def test_greedy_cover_on_a_small_family():
    models = [parametric_model(name) for name in ("M4444", "M4044", "M4144")]
    result = find_minimal_distinguishing_set(models, L_TESTS)
    assert result.complete
    # Three mutually distinct models need at least two tests.
    assert 2 <= len(result.test_names) <= 3


def test_greedy_cover_counts_only_pairs_its_pool_can_separate():
    """TSO and IBM370 look identical through L1 alone, so the pool sees no
    pair to cover; verify_distinguishing_set (judged against the full suite)
    is the function that exposes the gap."""
    models = [parametric_model(name) for name in ("M4044", "M4144")]
    result = find_minimal_distinguishing_set(models, [L_TESTS[0]])
    assert result.total_pairs == 0
    assert result.test_names == ()
    reference = verify_distinguishing_set(models, [L_TESTS[0]], no_dependency_suite().tests())
    assert not reference.complete
    assert reference.uncovered == (("M4044", "M4144"),)


def test_seed_tests_join_the_candidate_pool():
    models = [parametric_model(name) for name in ("M4044", "M4144")]
    result = find_minimal_distinguishing_set(models, [L_TESTS[0]], seed_tests=[L_TESTS[7]])
    assert result.complete
    assert result.test_names == ("L8",)
