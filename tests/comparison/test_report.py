"""Tests for exploration reports and DOT output."""

import pytest

from repro.comparison.exploration import explore_models
from repro.comparison.report import exploration_report, hasse_dot, verdict_table
from repro.core.parametric import KNOWN_CORRESPONDENCES, parametric_model
from repro.generation.named_tests import L_TESTS


@pytest.fixture(scope="module")
def small_exploration():
    models = [parametric_model(name) for name in ("M4444", "M4144", "M4044", "M1044", "M1010")]
    return explore_models(models, L_TESTS, preferred_tests=L_TESTS)


def test_report_mentions_models_and_counts(small_exploration):
    report = exploration_report(small_exploration, KNOWN_CORRESPONDENCES)
    assert "Explored 5 models" in report
    assert "M4444 (SC)" in report
    assert "Hasse diagram" in report
    assert "Strongest models" in report


def test_report_without_known_names(small_exploration):
    report = exploration_report(small_exploration)
    assert "M4444" in report and "(SC)" not in report


def test_dot_output_is_well_formed(small_exploration):
    dot = hasse_dot(small_exploration, KNOWN_CORRESPONDENCES)
    assert dot.startswith("digraph model_space {")
    assert dot.rstrip().endswith("}")
    assert '"M4444"' in dot
    assert "->" in dot
    assert "label=" in dot


def test_verdict_table_layout(small_exploration):
    table = verdict_table(small_exploration)
    lines = table.splitlines()
    assert len(lines) == 1 + 5  # header + one row per model
    assert "L1" in lines[0]
    assert lines[1].startswith("M1010") or "M1010" in table


def test_verdict_table_with_selected_tests(small_exploration):
    table = verdict_table(small_exploration, ["L7", "L8"])
    assert "L7" in table and "L1" not in table
    with pytest.raises(KeyError):
        verdict_table(small_exploration, ["not-a-test"])
