"""Tests for pairwise model comparison."""

import pytest

from repro.comparison.compare import ModelComparator, Relation, compare_models, verdict_vector
from repro.core.catalog import ALPHA, IBM370, PSO, SC, TSO, X86
from repro.core.parametric import parametric_model
from repro.generation.named_tests import L_TESTS, TEST_A


@pytest.fixture(scope="module")
def comparator():
    return ModelComparator([TEST_A] + L_TESTS)


def test_verdict_vector_shape(comparator):
    vector = comparator.verdict_vector(TSO)
    assert len(vector) == 10
    assert isinstance(vector[0], bool)


def test_verdict_vector_is_cached(comparator):
    before = comparator.checks_performed
    comparator.verdict_vector(TSO)
    comparator.verdict_vector(TSO)
    after = comparator.checks_performed
    assert after == max(before, 10) if before == 0 else before


def test_sc_allows_nothing_in_the_contrast_suite(comparator):
    assert not any(comparator.verdict_vector(SC))


def test_allowed_tests_names(comparator):
    allowed = comparator.allowed_tests(TSO)
    assert set(allowed) == {"A", "L7", "L8"}


def test_sc_is_stronger_than_everything(comparator):
    for model in (TSO, IBM370, PSO, ALPHA):
        result = comparator.compare(SC, model)
        assert result.relation is Relation.STRONGER
        assert result.only_first == ()
        assert result.witnesses()


def test_tso_vs_x86_equivalent(comparator):
    result = comparator.compare(TSO, X86)
    assert result.equivalent
    assert result.describe().endswith("are equivalent")


def test_relation_inverse_and_symmetry(comparator):
    forward = comparator.compare(TSO, PSO)
    backward = comparator.compare(PSO, TSO)
    assert forward.relation is backward.relation.inverse()
    assert forward.only_first == backward.only_second


def test_tso_weaker_than_ibm370(comparator):
    """IBM370 forbids Test A and L8; TSO allows them, so TSO is weaker."""
    result = comparator.compare(TSO, IBM370)
    assert result.relation is Relation.WEAKER
    assert set(result.only_first) == {"A", "L8"}


def test_pso_is_weaker_than_ibm370(comparator):
    """PSO relaxes strictly more than IBM370 (write-write and same-address write-read)."""
    result = comparator.compare(PSO, IBM370)
    assert result.relation is Relation.WEAKER
    assert result.only_second == ()


def test_incomparable_models(comparator):
    """PSO (M1044) and a read-relaxing IBM370 variant (M4140) are incomparable:
    each allows a test the other forbids."""
    first = parametric_model("M1044")
    second = parametric_model("M4140")
    result = comparator.compare(first, second)
    assert result.relation is Relation.INCOMPARABLE
    assert result.only_first and result.only_second
    assert "incomparable" in result.describe()


def test_distinguishing_tests(comparator):
    names = comparator.distinguishing_tests(TSO, SC)
    assert names == ["A", "L7", "L8"]


def test_module_level_helpers():
    tests = [TEST_A] + L_TESTS
    assert verdict_vector(SC, tests) == tuple([False] * 10)
    result = compare_models(parametric_model("M4044"), TSO, tests)
    assert result.equivalent


def test_comparator_with_sat_backend():
    comparator = ModelComparator([TEST_A, L_TESTS[6]], engine="sat")
    result = comparator.compare(TSO, SC)
    assert result.relation is Relation.WEAKER


def test_comparator_accepts_engine_instances_and_backend_names():
    from repro.engine.engine import CheckEngine

    engine = CheckEngine(backend="explicit")
    shared = ModelComparator([TEST_A], engine)
    assert shared.engine is engine
    named = ModelComparator([TEST_A], "sat")
    assert named.engine.strategy.name == "sat"


def test_comparator_checker_keyword_is_deprecated_but_works():
    from repro.checker.sat_checker import SatChecker

    with pytest.warns(DeprecationWarning, match="checker=.*deprecated"):
        comparator = ModelComparator([TEST_A, L_TESTS[6]], checker=SatChecker())
    assert comparator.compare(TSO, SC).relation is Relation.WEAKER


def test_comparator_raw_checker_positional_is_deprecated_but_works():
    from repro.checker.explicit import ExplicitChecker

    with pytest.warns(DeprecationWarning, match="raw checker object"):
        comparator = ModelComparator([TEST_A], ExplicitChecker())
    assert comparator.compare(TSO, SC).relation is Relation.WEAKER


def test_comparator_rejects_engine_and_checker_together():
    with pytest.raises(TypeError):
        ModelComparator([TEST_A], "explicit", checker="sat")


def test_module_helpers_keep_deprecated_checker_keyword():
    from repro.checker.sat_checker import SatChecker

    with pytest.warns(DeprecationWarning):
        result = compare_models(TSO, SC, [TEST_A], checker=SatChecker())
    assert result.relation is Relation.WEAKER
    with pytest.warns(DeprecationWarning):
        vector = verdict_vector(SC, [TEST_A], checker=SatChecker())
    assert vector == (False,)
