"""Tests for the brute-force reference checker."""

import pytest

from repro.checker.reference import ReferenceChecker
from repro.core.catalog import SC, TSO
from repro.core.instructions import Load
from repro.core.litmus import LitmusTest
from repro.core.program import Program, Thread
from repro.generation.named_tests import TEST_A


def test_reference_agrees_on_test_a():
    checker = ReferenceChecker()
    assert checker.check(TEST_A, TSO).allowed
    assert not checker.check(TEST_A, SC).allowed


def test_reference_refuses_large_programs():
    checker = ReferenceChecker(max_events=3)
    with pytest.raises(ValueError, match="limited to 3 events"):
        checker.check(TEST_A, SC)


def test_reference_handles_unobtainable_values():
    program = Program([Thread("T1", [Load("r1", "X")])])
    test = LitmusTest.from_register_outcome("bogus", program, {"r1": 3})
    assert not ReferenceChecker().check(test, SC).allowed
