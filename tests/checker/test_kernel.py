"""Unit tests for the bitset relation kernel (:mod:`repro.checker.kernel`)."""

import random

import pytest

from repro.checker.kernel import (
    INITIAL,
    IndexedExecution,
    KernelSearch,
    ReachabilityKernel,
    kernel_allowed,
)
from repro.checker.relations import (
    program_order_edges,
    read_from_candidates,
)
from repro.core.catalog import PSO, SC, TSO
from repro.core.instructions import Fence, Load, Store
from repro.core.litmus import LitmusTest
from repro.core.model import MemoryModel
from repro.core.program import Program, Thread
from repro.generation.named_tests import L_TESTS, TEST_A


def make_test(name, threads, outcome):
    return LitmusTest.from_register_outcome(name, Program(threads), outcome)


SB = make_test(
    "SB",
    [
        Thread("T1", [Store("X", 1), Load("r1", "Y")]),
        Thread("T2", [Store("Y", 1), Load("r2", "X")]),
    ],
    {"r1": 0, "r2": 0},
)


# ----------------------------------------------------------------------
# IndexedExecution
# ----------------------------------------------------------------------
def test_indexed_execution_numbers_events_and_relations():
    execution = SB.execution()
    ix = IndexedExecution(execution)
    assert ix.n == 4
    assert [ix.events[i] for i in range(4)] == execution.events
    # T1.0 (index 0) is program-order-before T1.1 (index 1), and nothing else.
    assert ix.po_before[1] == 1 << 0
    assert ix.po_before[0] == 0
    assert ix.same_thread[0] == 1 << 1
    # Stores/loads partition, per-location stores.
    assert ix.loads == (1, 3)
    assert ix.stores == (0, 2)
    assert ix.stores_at == {"X": (0,), "Y": (2,)}
    # Same-location masks relate the X store with the X load.
    assert ix.same_location[0] == 1 << 3
    assert ix.same_location[3] == 1 << 0


def test_indexed_rf_candidates_match_event_level_candidates():
    for test in [TEST_A, SB] + list(L_TESTS):
        execution = test.execution()
        ix = IndexedExecution(execution)
        for position, load_index in enumerate(ix.loads):
            expected = [
                INITIAL if source is None else ix.index_of[source]
                for source in read_from_candidates(execution, ix.events[load_index])
            ]
            assert list(ix.rf_candidates[position]) == expected


def test_indexed_infeasible_flag():
    bogus = make_test(
        "bogus",
        [Thread("T1", [Load("r1", "X")]), Thread("T2", [Store("X", 1)])],
        {"r1": 9},
    )
    assert IndexedExecution(bogus.execution()).infeasible
    assert not IndexedExecution(SB.execution()).infeasible


@pytest.mark.parametrize("model", [SC, TSO, PSO])
def test_vectorised_po_edges_match_event_level_edges(model):
    for test in [TEST_A, SB] + list(L_TESTS):
        execution = test.execution()
        ix = IndexedExecution(execution)
        expected = [
            (ix.index_of[x], ix.index_of[y])
            for x, y, _kind in program_order_edges(execution, model)
        ]
        assert ix.po_edge_pairs(model) == expected


def test_vectorised_po_edges_handle_negation_and_callables():
    execution = TEST_A.execution()
    ix = IndexedExecution(execution)
    negated = MemoryModel("not-fence", "!Fence(x) & !Fence(y)")
    expected = [
        (ix.index_of[x], ix.index_of[y])
        for x, y, _kind in program_order_edges(execution, negated)
    ]
    assert ix.po_edge_pairs(negated) == expected

    from_callable = MemoryModel("callable", lambda ex, x, y: x.is_write and y.is_read)
    expected = [
        (ix.index_of[x], ix.index_of[y])
        for x, y, _kind in program_order_edges(execution, from_callable)
    ]
    assert ix.po_edge_pairs(from_callable) == expected


def test_compiled_mask_programs_match_the_reference_interpreter():
    """The compile layer's bitmask lowering (hash-consed ModelIR) must agree
    bit-for-bit with ``_formula_mask``, the direct interpreter kept as the
    semantic reference."""
    from repro.compile import compile_model
    from repro.core.parametric import model_space

    models = model_space(include_data_dependencies=True)
    for test in [TEST_A, SB] + list(L_TESTS):
        ix = IndexedExecution(test.execution())
        for model in models:
            compiled = compile_model(model)
            assert compiled.kind == "formula", model.name
            assert compiled.mask_program(ix) == ix._formula_mask(
                model.formula, model.registry
            ), (test.name, model.name)


def test_uncacheable_nodes_still_evaluate_correctly(monkeypatch):
    """Past the hash-consing cap, IR nodes build unshared but stay correct."""
    import repro.compile as compile_package
    import repro.compile.ir as ir_module
    from repro.compile import compile_model

    monkeypatch.setattr(ir_module, "INTERN_LIMIT", 0)
    # Drop the warm intern table: with the limit at 0 nothing re-interns, so
    # this genuinely compiles through the uncached path (fresh node ids).
    compile_package.clear_caches()
    ix = IndexedExecution(TEST_A.execution())
    model = MemoryModel("capped", "(Write(x) & Write(y)) | Fence(x) | Fence(y)")
    compiled = compile_model(model)
    assert ir_module.interned_node_count() == 0
    assert compiled.mask_program(ix) == ix._formula_mask(model.formula, model.registry)


def test_atom_masks_are_cached_per_predicate():
    ix = IndexedExecution(TEST_A.execution())
    ix.po_edge_pairs(TSO)
    cached = dict(ix._atom_masks)
    ix.po_edge_pairs(TSO)
    assert ix._atom_masks == cached  # second evaluation reuses every mask


# ----------------------------------------------------------------------
# ReachabilityKernel
# ----------------------------------------------------------------------
def test_kernel_detects_cycles_and_self_loops():
    kernel = ReachabilityKernel(3)
    assert kernel.add_edge(0, 1)
    assert kernel.add_edge(1, 2)
    assert kernel.has_path(0, 2)
    assert not kernel.add_edge(2, 0)  # would close the cycle
    assert not kernel.add_edge(1, 1)  # self-loop
    # Refused insertions change nothing.
    assert kernel.has_path(0, 2) and not kernel.has_path(2, 0)


def test_kernel_undo_restores_reachability_exactly():
    kernel = ReachabilityKernel(4)
    assert kernel.add_edge(0, 1)
    snapshot = list(kernel.reach)
    mark = kernel.mark()
    assert kernel.add_edge(1, 2)
    assert kernel.add_edge(2, 3)
    assert kernel.has_path(0, 3)
    kernel.undo_to(mark)
    assert kernel.reach == snapshot
    # The undone edges can be reinserted and the graph completed differently.
    assert kernel.add_edge(3, 0)
    assert kernel.has_path(3, 1)


def test_kernel_matches_brute_force_on_random_edge_sequences():
    rng = random.Random(1234)
    for _round in range(50):
        n = rng.randint(2, 8)
        kernel = ReachabilityKernel(n)
        edges = set()
        for _step in range(rng.randint(1, 20)):
            u, v = rng.randrange(n), rng.randrange(n)
            inserted = kernel.add_edge(u, v)
            # Brute-force closure over the accepted edges.
            would_cycle = u == v or _reaches(edges, v, u)
            assert inserted == (not would_cycle)
            if inserted:
                edges.add((u, v))
        for a in range(n):
            for b in range(n):
                if a != b:
                    assert kernel.has_path(a, b) == _reaches(edges, a, b)


def _reaches(edges, source, target):
    frontier = [source]
    seen = set()
    while frontier:
        node = frontier.pop()
        for u, v in edges:
            if u == node and v not in seen:
                seen.add(v)
                frontier.append(v)
    return target in seen


def test_kernel_undo_interleaved_with_marks():
    kernel = ReachabilityKernel(5)
    marks = [kernel.mark()]
    snapshots = [list(kernel.reach)]
    for u, v in [(0, 1), (1, 2), (3, 4), (2, 3)]:
        assert kernel.add_edge(u, v)
        marks.append(kernel.mark())
        snapshots.append(list(kernel.reach))
    for mark, snapshot in zip(reversed(marks), reversed(snapshots)):
        kernel.undo_to(mark)
        assert kernel.reach == snapshot


# ----------------------------------------------------------------------
# KernelSearch
# ----------------------------------------------------------------------
def test_search_agrees_with_known_verdicts():
    ix = IndexedExecution(TEST_A.execution())
    assert kernel_allowed(ix, ix.po_edge_pairs(TSO))
    assert not kernel_allowed(ix, ix.po_edge_pairs(SC))

    sb = IndexedExecution(SB.execution())
    assert kernel_allowed(sb, sb.po_edge_pairs(TSO))
    assert not kernel_allowed(sb, sb.po_edge_pairs(SC))


def test_search_returns_a_valid_assignment():
    ix = IndexedExecution(TEST_A.execution())
    assignment = KernelSearch(ix, ix.po_edge_pairs(TSO)).run()
    assert assignment is not None
    rf_choice, coherence = assignment
    assert len(rf_choice) == len(ix.loads)
    for position, source in enumerate(rf_choice):
        assert source in ix.rf_candidates[position]
    assert set(coherence) == set(ix.locations)
    for location, order in coherence.items():
        assert sorted(order) == sorted(ix.stores_at[location])


def test_search_rejects_infeasible_executions():
    bogus = make_test(
        "bogus",
        [Thread("T1", [Load("r1", "X")]), Thread("T2", [Store("X", 1)])],
        {"r1": 9},
    )
    ix = IndexedExecution(bogus.execution())
    assert KernelSearch(ix, ix.po_edge_pairs(SC)).run() is None


def test_search_handles_fences_and_storeless_locations():
    test = make_test(
        "fence+pure-load",
        [
            Thread("T1", [Store("X", 1), Fence(), Load("r1", "Y")]),
            Thread("T2", [Load("r2", "X")]),
        ],
        {"r1": 0, "r2": 1},
    )
    ix = IndexedExecution(test.execution())
    # Y has no stores: the search plan must still cover the X decisions only.
    assert all(kind != "co" or item != "Y" for kind, item in KernelSearch(ix, []).plan)
    assert kernel_allowed(ix, ix.po_edge_pairs(SC))
