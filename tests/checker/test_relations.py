"""Tests for read-from candidates, coherence orders and forced edges."""


from repro.checker.relations import (
    enumerate_coherence_orders,
    enumerate_coherence_orders_reference,
    enumerate_read_from_maps,
    forced_edges,
    happens_before_graph,
    po_respecting_store_orders,
    program_order_edges,
    read_from_candidates,
)
from repro.core.catalog import SC, TSO
from repro.core.instructions import Load, Store
from repro.core.litmus import LitmusTest
from repro.core.program import Program, Thread
from repro.generation.named_tests import TEST_A


def sb_test(r1: int, r2: int) -> LitmusTest:
    program = Program(
        [
            Thread("T1", [Store("X", 1), Load("r1", "Y")]),
            Thread("T2", [Store("Y", 1), Load("r2", "X")]),
        ]
    )
    return LitmusTest.from_register_outcome("SB", program, {"r1": r1, "r2": r2})


def test_read_from_candidates_include_initial_and_matching_stores():
    execution = sb_test(0, 1).execution()
    load_y = execution.event(0, 1)
    load_x = execution.event(1, 1)
    assert read_from_candidates(execution, load_y) == [None]
    candidates = read_from_candidates(execution, load_x)
    assert len(candidates) == 1 and candidates[0].uid == "T1.0"


def test_read_from_candidates_exclude_later_stores_in_same_thread():
    program = Program([Thread("T1", [Load("r1", "X"), Store("X", 1)])])
    test = LitmusTest.from_register_outcome("RW", program, {"r1": 1})
    execution = test.execution()
    load = execution.event(0, 0)
    assert read_from_candidates(execution, load) == []  # cannot read the future write


def test_unobtainable_value_has_no_candidates():
    execution = sb_test(7, 0).execution()
    load_y = execution.event(0, 1)
    assert read_from_candidates(execution, load_y) == []
    assert list(enumerate_read_from_maps(execution)) == []


def test_enumerate_read_from_maps_counts():
    # Both reads see value 1; each read has exactly one candidate store.
    execution = sb_test(1, 1).execution()
    maps = list(enumerate_read_from_maps(execution))
    assert len(maps) == 1


def test_coherence_orders_respect_program_order():
    program = Program([Thread("T1", [Store("X", 1), Store("X", 2)]), Thread("T2", [Store("X", 3)])])
    execution = LitmusTest("coh", program, {}).execution()
    orders = list(enumerate_coherence_orders(execution))
    # 3 stores to X, same-thread pair fixed in program order: 3 interleavings
    assert len(orders) == 3
    for order in orders:
        stores = order["X"]
        first_indices = [s.index for s in stores if s.thread_index == 0]
        assert first_indices == sorted(first_indices)


def test_direct_coherence_generation_matches_reference_sequence():
    """The interleaving generator reproduces permute-then-filter exactly."""
    programs = [
        Program([Thread("T1", [Store("X", 1), Store("X", 2)]), Thread("T2", [Store("X", 3)])]),
        Program(
            [
                Thread("T1", [Store("X", 1), Store("Y", 1), Store("X", 2)]),
                Thread("T2", [Store("X", 3), Store("Y", 2)]),
                Thread("T3", [Store("Y", 3)]),
            ]
        ),
        Program([Thread("T1", [Load("r1", "X")]), Thread("T2", [Store("X", 1)])]),
    ]
    for index, program in enumerate(programs):
        reads = {
            (t, i): 1
            for t, thread in enumerate(program.threads)
            for i, instruction in enumerate(thread.instructions)
            if isinstance(instruction, Load)
        }
        execution = LitmusTest(f"coh{index}", program, reads).execution()
        direct = list(enumerate_coherence_orders(execution))
        reference = list(enumerate_coherence_orders_reference(execution))
        assert direct == reference


def test_po_respecting_store_orders_counts_interleavings():
    program = Program(
        [Thread("T1", [Store("X", 1), Store("X", 2)]), Thread("T2", [Store("X", 3), Store("X", 4)])]
    )
    execution = LitmusTest("interleave", program, {}).execution()
    orders = po_respecting_store_orders(execution.stores_to("X"))
    assert len(orders) == 6  # C(4, 2) interleavings of two chains of two
    assert po_respecting_store_orders([]) == [()]
    for order in orders:
        for i, earlier in enumerate(order):
            assert not any(later.program_order_before(earlier) for later in order[i + 1 :])


def test_forced_edges_accepts_precomputed_coherence_positions():
    execution = TEST_A.execution()
    loads = execution.loads()
    read_from = {loads[0]: None, loads[1]: execution.event(1, 0), loads[2]: None}
    coherence = {location: tuple(execution.stores_to(location)) for location in execution.locations()}
    from repro.checker.relations import coherence_position_map
    from repro.core.catalog import TSO as TSO_MODEL

    positions = coherence_position_map(coherence)

    assert forced_edges(execution, TSO_MODEL, read_from, coherence) == forced_edges(
        execution, TSO_MODEL, read_from, coherence, coherence_position=positions
    )


def test_program_order_edges_depend_on_model():
    execution = TEST_A.execution()
    sc_edges = program_order_edges(execution, SC)
    tso_edges = program_order_edges(execution, TSO)
    assert len(sc_edges) > len(tso_edges)
    # TSO has no edge from T2's store to its first load (store forwarding)
    t2_store = execution.event(1, 0)
    t2_load = execution.event(1, 1)
    assert not any(a == t2_store and b == t2_load for a, b, _ in tso_edges)
    assert any(a == t2_store and b == t2_load for a, b, _ in sc_edges)


def test_forced_edges_reject_anti_program_order_from_read():
    # T1 writes X then reads X but observes the initial value: impossible.
    program = Program([Thread("T1", [Store("X", 1), Load("r1", "X")])])
    test = LitmusTest.from_register_outcome("fwd", program, {"r1": 0})
    execution = test.execution()
    read_from = {execution.event(0, 1): None}
    coherence = {"X": (execution.event(0, 0),)}
    assert forced_edges(execution, SC, read_from, coherence) is None
    assert forced_edges(execution, TSO, read_from, coherence) is None


def test_forced_edges_for_test_a_under_tso_are_acyclic():
    execution = TEST_A.execution()
    loads = execution.loads()
    read_from = {
        loads[0]: None,  # T1 reads Y = 0 (initial)
        loads[1]: execution.event(1, 0),  # T2 forwards its own store to Y
        loads[2]: None,  # T2 reads X = 0 (initial)
    }
    coherence = {location: tuple(execution.stores_to(location)) for location in execution.locations()}
    edges = forced_edges(execution, TSO, read_from, coherence)
    assert edges is not None
    assert happens_before_graph(execution, edges).is_acyclic()
    # Under SC the same choice forces a cycle.
    sc_edges = forced_edges(execution, SC, read_from, coherence)
    assert sc_edges is not None
    assert not happens_before_graph(execution, sc_edges).is_acyclic()


def test_local_read_from_creates_no_edge():
    execution = TEST_A.execution()
    loads = execution.loads()
    read_from = {loads[0]: None, loads[1]: execution.event(1, 0), loads[2]: None}
    coherence = {location: tuple(execution.stores_to(location)) for location in execution.locations()}
    edges = forced_edges(execution, TSO, read_from, coherence)
    rf_edges = [(a.uid, b.uid) for a, b, kind in edges if kind == "rf"]
    assert ("T2.0", "T2.1") not in rf_edges
