"""Tests for the explicit-enumeration checker."""


from repro.checker.explicit import ExplicitChecker, is_allowed
from repro.core.catalog import PSO, SC, TSO
from repro.core.instructions import Fence, Load, Store
from repro.core.litmus import LitmusTest
from repro.core.model import MemoryModel
from repro.core.program import Program, Thread
from repro.generation.named_tests import L_TESTS, TEST_A


def make_test(name, threads, outcome):
    return LitmusTest.from_register_outcome(name, Program(threads), outcome)


def test_sequential_outcome_is_allowed_under_sc():
    test = make_test(
        "MP-ok",
        [
            Thread("T1", [Store("X", 1), Store("Y", 1)]),
            Thread("T2", [Load("r1", "Y"), Load("r2", "X")]),
        ],
        {"r1": 1, "r2": 1},
    )
    result = ExplicitChecker().check(test, SC)
    assert result.allowed
    assert result.witness is not None
    assert "reads from" in result.witness.describe()


def test_message_passing_violation_forbidden_under_sc_and_tso():
    test = make_test(
        "MP",
        [
            Thread("T1", [Store("X", 1), Store("Y", 1)]),
            Thread("T2", [Load("r1", "Y"), Load("r2", "X")]),
        ],
        {"r1": 1, "r2": 0},
    )
    assert not is_allowed(test, SC)
    assert not is_allowed(test, TSO)
    # PSO reorders the two (different-address) writes, so it allows MP.
    assert is_allowed(test, PSO)


def test_single_thread_coherence_violation_is_forbidden_everywhere():
    test = make_test(
        "own-write",
        [Thread("T1", [Store("X", 1), Load("r1", "X")])],
        {"r1": 0},
    )
    weakest = MemoryModel("nothing-ordered", "False")
    assert not is_allowed(test, weakest)
    assert not is_allowed(test, SC)


def test_store_forwarding_is_allowed_everywhere():
    test = make_test(
        "forward",
        [Thread("T1", [Store("X", 1), Load("r1", "X")])],
        {"r1": 1},
    )
    assert is_allowed(test, SC)
    assert is_allowed(test, MemoryModel("nothing-ordered", "False"))


def test_unobtainable_value_is_forbidden_with_reason():
    test = make_test(
        "bogus",
        [Thread("T1", [Load("r1", "X")]), Thread("T2", [Store("X", 1)])],
        {"r1": 9},
    )
    result = ExplicitChecker().check(test, SC)
    assert not result.allowed
    assert "no read-from source" in result.reason


def test_coherence_order_is_respected():
    # Reads must not observe two same-address writes in opposite orders.
    test = make_test(
        "coRR",
        [
            Thread("T1", [Store("X", 1), Store("X", 2)]),
            Thread("T2", [Load("r1", "X"), Load("r2", "X")]),
            ],
        {"r1": 2, "r2": 1},
    )
    assert not is_allowed(test, SC)
    # But a model that reorders reads may observe them inverted.
    assert is_allowed(test, MemoryModel("weak-reads", "Write(x) & Write(y)"))


def test_fence_restores_order_in_store_buffering():
    fenced = make_test(
        "SB+fences",
        [
            Thread("T1", [Store("X", 1), Fence(), Load("r1", "Y")]),
            Thread("T2", [Store("Y", 1), Fence(), Load("r2", "X")]),
        ],
        {"r1": 0, "r2": 0},
    )
    assert not is_allowed(fenced, TSO)
    unfenced = make_test(
        "SB",
        [
            Thread("T1", [Store("X", 1), Load("r1", "Y")]),
            Thread("T2", [Store("Y", 1), Load("r2", "X")]),
        ],
        {"r1": 0, "r2": 0},
    )
    assert is_allowed(unfenced, TSO)


def test_check_result_describe_mentions_test_and_model():
    result = ExplicitChecker().check(TEST_A, TSO)
    text = result.describe()
    assert "A" in text and "TSO" in text and "ALLOWED" in text
    forbidden = ExplicitChecker().check(TEST_A, SC)
    assert "FORBIDDEN" in forbidden.describe()


def test_witness_coherence_and_read_from_are_consistent():
    result = ExplicitChecker().check(TEST_A, TSO)
    witness = result.witness
    rf = witness.read_from_map()
    execution = TEST_A.execution()
    for load, store in rf.items():
        if store is not None:
            assert execution.location_of(load) == execution.location_of(store)
            assert execution.value_of(load) == execution.value_of(store)


def test_check_execution_accepts_prebuilt_execution():
    checker = ExplicitChecker()
    execution = TEST_A.execution()
    assert checker.check_execution(execution, TSO).allowed
    assert not checker.check_execution(execution, SC).allowed


def test_monotonicity_on_named_tests():
    """Adding conjuncts to F can only forbid more executions."""
    weaker = MemoryModel("w", "Fence(x) | Fence(y)")
    stronger = MemoryModel("s", "Fence(x) | Fence(y) | Read(x)")
    strongest = MemoryModel("ss", "True")
    for test in [TEST_A] + L_TESTS:
        a = is_allowed(test, weaker)
        b = is_allowed(test, stronger)
        c = is_allowed(test, strongest)
        assert (not b) or a  # allowed under stronger => allowed under weaker
        assert (not c) or b
