"""Tests for outcome enumeration."""


from repro.checker.outcomes import allowed_outcomes, enumerate_candidate_outcomes
from repro.core.catalog import ALPHA, SC, TSO
from repro.core.instructions import Load, Store
from repro.core.program import Program, Thread


def sb_program() -> Program:
    return Program(
        [
            Thread("T1", [Store("X", 1), Load("r1", "Y")]),
            Thread("T2", [Store("Y", 1), Load("r2", "X")]),
        ]
    )


def lb_program() -> Program:
    return Program(
        [
            Thread("T1", [Load("r1", "X"), Store("Y", 1)]),
            Thread("T2", [Load("r2", "Y"), Store("X", 1)]),
        ]
    )


def test_candidate_outcomes_cover_the_value_space():
    outcomes = list(enumerate_candidate_outcomes(sb_program()))
    assert len(outcomes) == 4  # each read is 0 or 1


def test_sc_forbids_exactly_the_store_buffering_outcome():
    outcomes = allowed_outcomes(sb_program(), SC)
    as_tuples = {tuple(sorted(o.items())) for o in outcomes}
    assert (("r1", 0), ("r2", 0)) not in as_tuples
    assert len(outcomes) == 3


def test_tso_allows_all_four_store_buffering_outcomes():
    outcomes = allowed_outcomes(sb_program(), TSO)
    assert len(outcomes) == 4


def test_load_buffering_outcome_only_under_weak_models():
    sc_outcomes = {tuple(sorted(o.items())) for o in allowed_outcomes(lb_program(), SC)}
    tso_outcomes = {tuple(sorted(o.items())) for o in allowed_outcomes(lb_program(), TSO)}
    alpha_outcomes = {tuple(sorted(o.items())) for o in allowed_outcomes(lb_program(), ALPHA)}
    lb = (("r1", 1), ("r2", 1))
    assert lb not in sc_outcomes
    assert lb not in tso_outcomes
    assert lb in alpha_outcomes


def test_allowed_outcomes_subset_relationship():
    """Every SC outcome is also a TSO outcome (SC is stronger)."""
    sc_outcomes = {tuple(sorted(o.items())) for o in allowed_outcomes(sb_program(), SC)}
    tso_outcomes = {tuple(sorted(o.items())) for o in allowed_outcomes(sb_program(), TSO)}
    assert sc_outcomes <= tso_outcomes


def test_dependent_store_values_reach_candidate_sets():
    """A store whose value comes from a load is discovered by the fixed point."""
    from repro.core.expr import BinOp, Reg

    program = Program(
        [
            Thread("T1", [Load("r1", "X"), Store("Y", Reg("r1"))]),
            Thread("T2", [Store("X", 3), Load("r2", "Y")]),
        ]
    )
    outcomes = allowed_outcomes(program, SC)
    observed_r2 = {o["r2"] for o in outcomes}
    assert 3 in observed_r2  # value 3 flowed X -> r1 -> Y -> r2
    assert 0 in observed_r2


def test_single_thread_program_has_single_outcome_under_sc():
    program = Program([Thread("T1", [Store("X", 2), Load("r1", "X")])])
    outcomes = allowed_outcomes(program, SC)
    assert outcomes == [{"r1": 2}]
