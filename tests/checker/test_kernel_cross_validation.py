"""Randomized cross-validation of the kernel search against its oracles.

A seeded generator produces small random executions (programs plus observed
load values, spanning feasible, infeasible and contended shapes) and random
models, and the suite asserts that the backtracking kernel checker
(:class:`ExplicitChecker`), the product-enumeration oracle
(:class:`EnumerationChecker`) and the SAT backend all return the same
verdict.  Unlike the hypothesis properties in ``test_cross_validation.py``
this sweep is deterministic and covers a fixed budget of ≥200 executions,
so a kernel regression cannot hide behind example shrinking.
"""

import random

from repro.checker.explicit import ExplicitChecker
from repro.checker.reference import EnumerationChecker, ReferenceChecker
from repro.checker.sat_checker import SatChecker
from repro.core.catalog import PSO, SC, TSO
from repro.core.instructions import Fence, Load, Store
from repro.core.litmus import LitmusTest
from repro.core.model import MemoryModel
from repro.core.parametric import model_space
from repro.core.program import Program, Thread

EXPLICIT = ExplicitChecker()
ENUMERATION = EnumerationChecker()
SAT = SatChecker()
REFERENCE = ReferenceChecker(max_events=7)

#: Model pool: the full parametric space, the catalog classics, and a
#: negated formula plus a raw callable to exercise the kernel's fallbacks.
MODELS = (
    model_space(include_data_dependencies=True)
    + [SC, TSO, PSO]
    + [
        MemoryModel("neg", "!Fence(x) & !Fence(y) & SameAddr(x, y)"),
        MemoryModel("callable", lambda execution, x, y: x.is_write or y.is_fence),
    ]
)

LOCATIONS = ("X", "Y")
VALUES = (0, 1, 2)


def random_program(rng: random.Random) -> Program:
    threads = []
    register = 0
    for thread_index in range(rng.randint(1, 3)):
        instructions = []
        for _ in range(rng.randint(1, 3)):
            kind = rng.random()
            if kind < 0.45:
                instructions.append(Store(rng.choice(LOCATIONS), rng.choice((1, 2))))
            elif kind < 0.9:
                register += 1
                instructions.append(Load(f"r{register}", rng.choice(LOCATIONS)))
            else:
                instructions.append(Fence())
        threads.append(Thread(f"T{thread_index + 1}", instructions))
    return Program(threads)


def random_execution_test(rng: random.Random, index: int) -> LitmusTest:
    program = random_program(rng)
    read_values = {}
    for thread_index, thread in enumerate(program.threads):
        for instruction_index, instruction in enumerate(thread.instructions):
            if isinstance(instruction, Load):
                read_values[(thread_index, instruction_index)] = rng.choice(VALUES)
    return LitmusTest(f"rnd{index}", program, read_values)


def test_kernel_agrees_with_enumeration_and_sat_on_200_random_executions():
    rng = random.Random(20110605)  # DAC 2011 started June 5th
    checked = 0
    allowed = 0
    while checked < 200:
        test = random_execution_test(rng, checked)
        model = rng.choice(MODELS)
        kernel_verdict = EXPLICIT.check(test, model).allowed
        assert kernel_verdict == ENUMERATION.check(test, model).allowed, (
            f"kernel vs enumeration mismatch on {test.name} under {model.name}"
        )
        assert kernel_verdict == SAT.check(test, model).allowed, (
            f"kernel vs SAT mismatch on {test.name} under {model.name}"
        )
        checked += 1
        allowed += kernel_verdict
    # The generator must exercise both verdicts, or the sweep proves nothing.
    assert 20 < allowed < 180


def test_kernel_agrees_with_total_order_reference_on_tiny_executions():
    rng = random.Random(404)
    checked = 0
    while checked < 40:
        test = random_execution_test(rng, checked)
        if len(test.program.threads) > 2 or sum(
            len(thread.instructions) for thread in test.program.threads
        ) > 5:
            continue
        model = rng.choice(MODELS)
        assert (
            EXPLICIT.check(test, model).allowed == REFERENCE.check(test, model).allowed
        ), f"kernel vs reference mismatch on {test.name} under {model.name}"
        checked += 1


def test_kernel_witnesses_are_valid_on_random_allowed_executions():
    from repro.checker.relations import forced_edges, happens_before_graph

    rng = random.Random(99)
    found = 0
    attempts = 0
    while found < 30 and attempts < 400:
        attempts += 1
        test = random_execution_test(rng, attempts)
        model = rng.choice(MODELS)
        result = EXPLICIT.check(test, model)
        if not result.allowed:
            continue
        found += 1
        witness = result.witness
        assert witness is not None
        execution = test.execution()
        edges = forced_edges(
            execution, model, witness.read_from_map(), witness.coherence_map()
        )
        assert edges is not None
        assert happens_before_graph(execution, edges).is_acyclic()
    assert found == 30
