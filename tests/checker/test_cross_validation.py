"""Cross-validation of the three checker backends on random inputs.

The explicit, SAT and brute-force reference backends implement the same
semantics through very different mechanisms (enumeration + graph cycle
detection, CNF + CDCL, and total-order enumeration).  Agreement on random
litmus tests and random parametric models is strong evidence that the axioms
are implemented correctly.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.checker.explicit import ExplicitChecker
from repro.checker.reference import ReferenceChecker
from repro.checker.sat_checker import SatChecker
from repro.core.catalog import SC

from tests.conftest import parametric_models, small_litmus_tests

EXPLICIT = ExplicitChecker()
SAT = SatChecker()
REFERENCE = ReferenceChecker(max_events=9)

_SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@_SETTINGS
@given(test=small_litmus_tests(), model=parametric_models())
def test_explicit_and_sat_agree_on_random_inputs(test, model):
    memory_model = model.to_memory_model()
    assert (
        EXPLICIT.check(test, memory_model).allowed == SAT.check(test, memory_model).allowed
    )


@_SETTINGS
@given(test=small_litmus_tests(), model=parametric_models())
def test_explicit_and_reference_agree_on_random_inputs(test, model):
    memory_model = model.to_memory_model()
    assert (
        EXPLICIT.check(test, memory_model).allowed
        == REFERENCE.check(test, memory_model).allowed
    )


@_SETTINGS
@given(test=small_litmus_tests())
def test_sc_allows_only_what_every_model_allows(test):
    """SC is the strongest model: anything SC allows, every parametric model allows."""
    if EXPLICIT.check(test, SC).allowed:
        from repro.core.parametric import parametric_model

        for name in ("M1010", "M4044", "M1044", "M4144"):
            assert EXPLICIT.check(test, parametric_model(name)).allowed


@_SETTINGS
@given(test=small_litmus_tests(), model=parametric_models())
def test_weakening_the_model_preserves_allowed_outcomes(test, model):
    """Dropping the rr constraint to ALWAYS never forbids previously allowed tests."""
    from dataclasses import replace
    from repro.core.parametric import ReorderOption

    weaker = replace(model, rr=ReorderOption.ALWAYS)
    strong_allowed = EXPLICIT.check(test, model.to_memory_model()).allowed
    weak_allowed = EXPLICIT.check(test, weaker.to_memory_model()).allowed
    assert (not strong_allowed) or weak_allowed
