"""Tests for the SAT-based checker and its CNF encoding."""

import pytest

from repro.checker.encoder import encode
from repro.checker.explicit import ExplicitChecker
from repro.checker.sat_checker import SatChecker
from repro.core.catalog import ALPHA, IBM370, PSO, RMO_DATA_DEP_ONLY, SC, TSO
from repro.core.instructions import Load, Store
from repro.core.litmus import LitmusTest
from repro.core.program import Program, Thread
from repro.generation.named_tests import L_TESTS, TEST_A

MODELS = (SC, TSO, IBM370, PSO, RMO_DATA_DEP_ONLY, ALPHA)


@pytest.mark.parametrize("use_preprocessing", [False, True])
def test_sat_checker_matches_explicit_on_named_tests(use_preprocessing):
    sat = SatChecker(use_preprocessing=use_preprocessing)
    explicit = ExplicitChecker()
    for test in [TEST_A] + L_TESTS:
        for model in MODELS:
            assert sat.check(test, model).allowed == explicit.check(test, model).allowed, (
                f"{test.name} under {model.name}"
            )


def test_encoding_structure():
    execution = TEST_A.execution()
    encoding = encode(execution, TSO)
    assert not encoding.trivially_unsat
    assert len(encoding.order_vars) == len(execution.events) * (len(execution.events) - 1) // 2
    # Test A has three loads, each with exactly one read-from candidate.
    assert len(encoding.read_from_vars) == 3
    # No location has two stores, so there are no coherence variables.
    assert len(encoding.coherence_vars) == 0
    assert len(encoding.cnf) > 0


def test_encoding_coherence_variables_for_multiple_stores():
    program = Program(
        [Thread("T1", [Store("X", 1), Store("X", 2)]), Thread("T2", [Load("r1", "X")])]
    )
    test = LitmusTest.from_register_outcome("co", program, {"r1": 2})
    encoding = encode(test.execution(), SC)
    assert len(encoding.coherence_vars) == 1


def test_encoding_trivially_unsat_for_unobtainable_values():
    program = Program([Thread("T1", [Load("r1", "X")])])
    test = LitmusTest.from_register_outcome("bogus", program, {"r1": 5})
    encoding = encode(test.execution(), SC)
    assert encoding.trivially_unsat
    assert not SatChecker().check(test, SC).allowed


def test_sat_witness_is_decoded_and_consistent():
    result = SatChecker().check(TEST_A, TSO)
    assert result.allowed
    witness = result.witness
    assert witness is not None
    execution = TEST_A.execution()
    read_from = witness.read_from_map()
    assert len(read_from) == len(execution.loads())
    for load, store in read_from.items():
        if store is not None:
            assert execution.value_of(load) == execution.value_of(store)


def test_order_literal_is_antisymmetric():
    execution = TEST_A.execution()
    encoding = encode(execution, TSO)
    first = execution.events[0].uid
    second = execution.events[1].uid
    assert encoding.order_literal(first, second) == -encoding.order_literal(second, first)
