"""The paper's concrete admissibility facts (Figure 1 and Figure 3).

These tests pin down exactly which named models allow Test A and L1..L9.
They constitute the ground truth that Section 4.2's exploration builds on:
each L test isolates one reordering axis of the parametric space.
"""

import pytest

from repro.checker.explicit import ExplicitChecker
from repro.core.catalog import ALPHA, IBM370, PSO, RMO_DATA_DEP_ONLY, SC, TSO, X86
from repro.core.parametric import parametric_model
from repro.generation.named_tests import L_TESTS, TEST_A, all_named_tests

CHECKER = ExplicitChecker()


def allowed(test, model) -> bool:
    return CHECKER.check(test, model).allowed


# ----------------------------------------------------------------------
# Figure 1: Test A
# ----------------------------------------------------------------------
def test_test_a_is_allowed_under_tso_and_forbidden_under_sc():
    assert allowed(TEST_A, TSO)
    assert allowed(TEST_A, X86)
    assert not allowed(TEST_A, SC)


def test_test_a_distinguishes_ibm370_from_tso():
    """IBM370 orders same-address write->read, so it forbids Test A."""
    assert not allowed(TEST_A, IBM370)
    assert allowed(TEST_A, PSO)
    assert allowed(TEST_A, ALPHA)


# ----------------------------------------------------------------------
# Figure 3: L1 .. L9 under the named models
# ----------------------------------------------------------------------
EXPECTED = {
    # test: (SC, TSO, IBM370, PSO, RMO-data, Alpha)
    "L1": (False, False, False, True, True, True),
    "L2": (False, False, False, False, True, True),
    "L3": (False, False, False, False, True, True),
    "L4": (False, False, False, False, False, True),
    "L5": (False, False, False, False, True, True),
    "L6": (False, False, False, False, False, True),
    "L7": (False, True, True, True, True, True),
    "L8": (False, True, False, True, True, True),
    "L9": (False, False, False, True, True, True),
}

MODELS = (SC, TSO, IBM370, PSO, RMO_DATA_DEP_ONLY, ALPHA)


@pytest.mark.parametrize("test_name", sorted(EXPECTED))
def test_l_tests_verdicts_under_named_models(test_name):
    test = all_named_tests()[test_name]
    verdicts = tuple(allowed(test, model) for model in MODELS)
    assert verdicts == EXPECTED[test_name], (
        f"{test_name}: expected {EXPECTED[test_name]} for "
        f"{[m.name for m in MODELS]}, got {verdicts}"
    )


def test_sc_forbids_every_contrasting_test():
    for test in L_TESTS:
        assert not allowed(test, SC)


def test_each_l_test_detects_its_documented_reordering_axis():
    """L1..L7 correspond directly to the enumeration choices (Section 4.2)."""
    # L1: write-write reordering (ww digit)
    assert not allowed(all_named_tests()["L1"], parametric_model("M4010"))
    assert allowed(all_named_tests()["L1"], parametric_model("M1010"))
    # L2: same-address read-read reordering (rr = ALWAYS vs DIFFERENT_ADDRESS)
    assert allowed(all_named_tests()["L2"], parametric_model("M1010"))
    assert not allowed(all_named_tests()["L2"], parametric_model("M1011"))
    # L3: different-address read-read reordering
    assert allowed(all_named_tests()["L3"], parametric_model("M1011"))
    assert not allowed(all_named_tests()["L3"], parametric_model("M1014"))
    # L4: dependent read-read reordering (needs the with-dependency space)
    assert allowed(all_named_tests()["L4"], parametric_model("M1011"))
    assert not allowed(all_named_tests()["L4"], parametric_model("M1013"))
    # L5: read-write reordering
    assert allowed(all_named_tests()["L5"], parametric_model("M1010"))
    assert not allowed(all_named_tests()["L5"], parametric_model("M1040"))
    # L6: dependent read-write reordering
    assert allowed(all_named_tests()["L6"], parametric_model("M1010"))
    assert not allowed(all_named_tests()["L6"], parametric_model("M1030"))
    # L7: write-read reordering to different addresses
    assert allowed(all_named_tests()["L7"], parametric_model("M4044"))
    assert not allowed(all_named_tests()["L7"], parametric_model("M4444"))
    # L8: write-read reordering to the same address, observed through reads
    assert allowed(all_named_tests()["L8"], parametric_model("M4044"))
    assert not allowed(all_named_tests()["L8"], parametric_model("M4144"))
    # L9: write-read reordering to the same address, observed through a write.
    # It applies when the dependent read-write pair is ordered (rw = NEVER
    # here) and the write-write pair is not (ww = DIFFERENT_ADDRESS), so that
    # no other edge closes the cycle.
    assert allowed(all_named_tests()["L9"], parametric_model("M1044"))
    assert not allowed(all_named_tests()["L9"], parametric_model("M1144"))


def test_bounds_of_named_tests_match_theorem_1():
    """Every contrasting test uses two threads and at most six memory accesses."""
    for test in L_TESTS:
        assert test.num_threads() == 2
        assert test.num_memory_accesses() <= 6
