"""Tests for the expression language."""

import pytest

from repro.core.expr import (
    BinOp,
    Const,
    ExprError,
    Loc,
    LocValue,
    Reg,
    evaluate_expr,
    resolve_location,
)


def test_const_evaluates_to_itself():
    assert evaluate_expr(Const(7), {}) == 7


def test_reg_reads_valuation():
    assert evaluate_expr(Reg("r1"), {"r1": 3}) == 3


def test_undefined_register_raises():
    with pytest.raises(ExprError):
        evaluate_expr(Reg("r1"), {})


def test_loc_evaluates_to_location_value():
    value = evaluate_expr(Loc("X"), {})
    assert isinstance(value, LocValue)
    assert value.name == "X" and value.offset == 0


def test_integer_arithmetic():
    expr = BinOp("+", BinOp("-", Const(5), Const(2)), Const(4))
    assert evaluate_expr(expr, {}) == 7


def test_dependency_idiom_cancels_to_payload():
    # t = r1 - r1 + 1
    expr = BinOp("+", BinOp("-", Reg("r1"), Reg("r1")), Const(1))
    assert evaluate_expr(expr, {"r1": 42}) == 1
    assert evaluate_expr(expr, {"r1": 0}) == 1


def test_address_dependency_idiom_resolves_to_location():
    # t = r1 - r1 + X
    expr = BinOp("+", BinOp("-", Reg("r1"), Reg("r1")), Loc("X"))
    value = evaluate_expr(expr, {"r1": 5})
    assert resolve_location(value) == "X"


def test_location_plus_offset_is_not_a_plain_location():
    value = evaluate_expr(BinOp("+", Loc("X"), Const(1)), {})
    assert isinstance(value, LocValue) and value.offset == 1
    with pytest.raises(ExprError):
        resolve_location(value)


def test_resolve_location_rejects_integers():
    with pytest.raises(ExprError):
        resolve_location(3)


def test_combining_two_locations_is_an_error():
    with pytest.raises(ExprError):
        evaluate_expr(BinOp("+", Loc("X"), Loc("Y")), {})


def test_subtracting_location_from_integer_is_an_error():
    with pytest.raises(ExprError):
        evaluate_expr(BinOp("-", Const(3), Loc("X")), {})


def test_unsupported_operator_rejected():
    with pytest.raises(ExprError):
        BinOp("*", Const(1), Const(2))


def test_binop_coerces_ints_and_register_names():
    expr = BinOp("+", "r1", 2)
    assert expr.left == Reg("r1")
    assert expr.right == Const(2)
    assert evaluate_expr(expr, {"r1": 3}) == 5


def test_operator_sugar_builds_binops():
    expr = Reg("r1") + 1
    assert isinstance(expr, BinOp)
    assert evaluate_expr(expr, {"r1": 2}) == 3
    expr2 = 5 - Const(2)
    assert evaluate_expr(expr2, {}) == 3


def test_registers_collects_register_names():
    expr = BinOp("+", BinOp("-", Reg("a"), Reg("b")), Const(1))
    assert expr.registers() == frozenset({"a", "b"})
    assert Loc("X").registers() == frozenset()
