"""Tests for must-not-reorder formulas and the DSL parser."""

import pytest

from repro.core.execution import Execution
from repro.core.formula import (
    And,
    Atom,
    FalseFormula,
    FormulaError,
    Not,
    Or,
    TrueFormula,
    parse_formula,
)
from repro.core.instructions import Fence, Load, Store
from repro.core.program import Program, Thread


@pytest.fixture()
def execution():
    program = Program(
        [Thread("T1", [Store("X", 1), Fence(), Load("r1", "X"), Load("r2", "Y")])]
    )
    return Execution(program, {(0, 2): 1, (0, 3): 0})


def events(execution):
    return execution.events


def test_constants(execution):
    store, fence, load_x, load_y = events(execution)
    assert TrueFormula().evaluate(execution, store, load_x)
    assert not FalseFormula().evaluate(execution, store, load_x)


def test_unary_atoms(execution):
    store, fence, load_x, load_y = events(execution)
    assert Atom("Write", ("x",)).evaluate(execution, store, load_x)
    assert Atom("Read", ("y",)).evaluate(execution, store, load_x)
    assert Atom("Fence", ("x",)).evaluate(execution, fence, load_x)
    assert not Atom("Fence", ("x",)).evaluate(execution, store, load_x)


def test_binary_atoms(execution):
    store, fence, load_x, load_y = events(execution)
    assert Atom("SameAddr", ("x", "y")).evaluate(execution, store, load_x)
    assert not Atom("SameAddr", ("x", "y")).evaluate(execution, store, load_y)


def test_atom_argument_validation():
    with pytest.raises(FormulaError):
        Atom("Read", ())
    with pytest.raises(FormulaError):
        Atom("Read", ("z",))
    with pytest.raises(FormulaError):
        Atom("SameAddr", ("x", "y", "x"))


def test_unknown_predicate_raises(execution):
    store, _, load_x, _ = events(execution)
    with pytest.raises(FormulaError, match="unknown predicate"):
        Atom("Bogus", ("x",)).evaluate(execution, store, load_x)


def test_connectives(execution):
    store, fence, load_x, load_y = events(execution)
    conjunction = And([Atom("Write", ("x",)), Atom("Read", ("y",))])
    disjunction = Or([Atom("Fence", ("x",)), Atom("Fence", ("y",))])
    negation = Not(Atom("Write", ("x",)))
    assert conjunction.evaluate(execution, store, load_x)
    assert not conjunction.evaluate(execution, load_x, load_y)
    assert disjunction.evaluate(execution, fence, load_x)
    assert not disjunction.evaluate(execution, store, load_x)
    assert not negation.evaluate(execution, store, load_x)
    assert negation.is_positive() is False
    assert conjunction.is_positive() and disjunction.is_positive()


def test_operator_sugar():
    a = Atom("Read", ("x",))
    b = Atom("Write", ("y",))
    assert isinstance(a & b, And)
    assert isinstance(a | b, Or)
    assert isinstance(~a, Not)


def test_atoms_collection():
    formula = parse_formula("(Write(x) & Read(y)) | Fence(x)")
    names = sorted(atom.predicate for atom in formula.atoms())
    assert names == ["Fence", "Read", "Write"]


def test_parse_tso_formula_matches_paper(execution):
    formula = parse_formula("(Write(x) & Write(y)) | Read(x) | Fence(x) | Fence(y)")
    store, fence, load_x, load_y = events(execution)
    assert formula.evaluate(execution, load_x, load_y)  # Read(x)
    assert formula.evaluate(execution, fence, load_x)  # Fence(x)
    assert not formula.evaluate(execution, store, load_y)  # W->R may reorder


def test_parse_precedence_and_parentheses():
    formula = parse_formula("Read(x) | Write(x) & Write(y)")
    # '&' binds tighter than '|'
    assert isinstance(formula, Or)
    formula2 = parse_formula("(Read(x) | Write(x)) & Write(y)")
    assert isinstance(formula2, And)


def test_parse_constants_and_negation():
    assert isinstance(parse_formula("True"), TrueFormula)
    assert isinstance(parse_formula("False"), FalseFormula)
    assert isinstance(parse_formula("!Read(x)"), Not)


def test_parse_errors():
    for text in ["Read(x", "Read(x) &", "Read(x) Write(y)", "", "Read(x) @ Write(y)", "(Read(x)"]:
        with pytest.raises(FormulaError):
            parse_formula(text)


def test_roundtrip_through_str():
    formula = parse_formula("(Write(x) & Read(y) & SameAddr(x, y)) | Fence(x)")
    reparsed = parse_formula(str(formula))
    assert str(reparsed) == str(formula)


# ----------------------------------------------------------------------
# parse-error positions and snippets
# ----------------------------------------------------------------------
def test_parse_errors_carry_source_position_and_snippet():
    with pytest.raises(FormulaError) as info:
        parse_formula("Write(x) & ) | Read(y)")
    error = info.value
    assert error.position == 11
    assert error.source == "Write(x) & ) | Read(y)"
    rendered = str(error)
    assert "at position 11" in rendered
    assert "Write(x) & ) | Read(y)" in rendered
    assert rendered.splitlines()[-1].index("^") - 4 == 11  # caret under the ')'


def test_parse_error_positions_point_at_the_offending_token():
    cases = {
        "Write(x) & ": 11,            # unexpected end of input
        "Write(z)": 6,                # bad variable name
        "Write(x) Read(y)": 9,        # trailing input
        "Write(x) @ Read(y)": 9,      # bad character
        "Write(x, y, x)": 0,          # too many arguments
        "Write(x & Read(y)": 8,       # expected ')', found '&'
    }
    for text, position in cases.items():
        with pytest.raises(FormulaError) as info:
            parse_formula(text)
        assert info.value.position == position, text
        assert info.value.source == text


def test_parse_error_expected_token_names_the_symbol():
    with pytest.raises(FormulaError, match=r"expected '\)'"):
        parse_formula("Write(x & Read(y)")
    with pytest.raises(FormulaError, match=r"expected '\('"):
        parse_formula("Write & Read(y)")


def test_non_parse_errors_render_without_position():
    error = FormulaError("plain message")
    assert str(error) == "plain message"
    assert error.position is None and error.source is None
