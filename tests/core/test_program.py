"""Tests for threads and programs."""

import pytest

from repro.core.instructions import Fence, Load, Op, Store
from repro.core.expr import Reg
from repro.core.program import Program, Thread


def make_mp_program() -> Program:
    return Program(
        [
            Thread("T1", [Store("X", 1), Store("Y", 1)]),
            Thread("T2", [Load("r1", "Y"), Fence(), Load("r2", "X")]),
        ]
    )


def test_thread_memory_accesses():
    thread = Thread("T1", [Store("X", 1), Fence(), Load("r1", "Y")])
    assert len(thread.memory_accesses()) == 2
    assert len(thread) == 3


def test_thread_registers():
    thread = Thread("T1", [Load("r1", "X"), Op("t1", Reg("r1") + 1), Store("Y", Reg("t1"))])
    assert thread.registers() == {"r1", "t1"}


def test_thread_validate_rejects_use_before_def():
    thread = Thread("T1", [Store("X", Reg("r1"))])
    with pytest.raises(ValueError, match="undefined register"):
        thread.validate()


def test_thread_validate_rejects_double_assignment():
    thread = Thread("T1", [Load("r1", "X"), Load("r1", "Y")])
    with pytest.raises(ValueError, match="more than once"):
        thread.validate()


def test_program_locations_in_first_use_order():
    program = make_mp_program()
    assert program.locations() == ["X", "Y"]


def test_program_counts_memory_accesses():
    assert make_mp_program().num_memory_accesses() == 4


def test_program_validate_rejects_duplicate_thread_names():
    program = Program([Thread("T1", [Store("X", 1)]), Thread("T1", [Store("Y", 1)])])
    with pytest.raises(ValueError, match="duplicate thread names"):
        program.validate()


def test_program_from_lists_names_threads():
    program = Program.from_lists([Store("X", 1)], [Load("r1", "X")])
    assert [thread.name for thread in program.threads] == ["T1", "T2"]
    assert len(program) == 2


def test_program_from_lists_with_custom_names():
    program = Program.from_lists([Store("X", 1)], names=["writer"])
    assert program.threads[0].name == "writer"


def test_program_registers_per_thread():
    registers = make_mp_program().registers()
    assert registers["T2"] == {"r1", "r2"}
    assert registers["T1"] == set()


def test_valid_program_passes_validation():
    make_mp_program().validate()
