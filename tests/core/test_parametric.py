"""Tests for the parametric model family M{ww}{wr}{rw}{rr}."""

import pytest

from repro.checker.explicit import ExplicitChecker
from repro.core.catalog import IBM370, PSO, SC, TSO
from repro.core.parametric import (
    ALLOWED_OPTIONS,
    ALLOWED_OPTIONS_NO_DEP,
    KNOWN_CORRESPONDENCES,
    ParametricModel,
    ReorderOption,
    model_space,
    parametric_model,
)
from repro.generation.named_tests import L_TESTS, TEST_A


def test_option_conditions():
    assert str(ReorderOption.ALWAYS.must_not_reorder_condition()) == "False"
    assert str(ReorderOption.NEVER.must_not_reorder_condition()) == "True"
    assert "SameAddr" in str(ReorderOption.DIFFERENT_ADDRESS.must_not_reorder_condition())
    assert "DataDep" in str(ReorderOption.NO_DATA_DEPENDENCY.must_not_reorder_condition())
    combined = str(
        ReorderOption.DIFFERENT_ADDRESS_AND_NO_DATA_DEPENDENCY.must_not_reorder_condition()
    )
    assert "SameAddr" in combined and "DataDep" in combined


def test_option_dependency_flag():
    assert ReorderOption.NO_DATA_DEPENDENCY.uses_data_dependencies
    assert not ReorderOption.DIFFERENT_ADDRESS.uses_data_dependencies


def test_model_space_sizes_match_paper():
    assert len(model_space(include_data_dependencies=True)) == 90
    assert len(model_space(include_data_dependencies=False)) == 36


def test_model_space_names_are_unique_and_sorted():
    names = [model.name for model in model_space()]
    assert names == sorted(names)
    assert len(set(names)) == len(names)


def test_naming_roundtrip():
    model = ParametricModel.from_name("M4044")
    assert model.name == "M4044"
    assert model.ww is ReorderOption.NEVER
    assert model.wr is ReorderOption.ALWAYS
    assert model.rw is ReorderOption.NEVER
    assert model.rr is ReorderOption.NEVER


def test_from_name_rejects_malformed_and_forbidden_names():
    with pytest.raises(ValueError):
        ParametricModel.from_name("4044")
    with pytest.raises(ValueError):
        ParametricModel.from_name("M40444")
    with pytest.raises(ValueError):
        ParametricModel.from_name("M0444")  # ww = ALWAYS is not permitted
    with pytest.raises(ValueError):
        ParametricModel.from_name("M4244")  # wr = NO_DATA_DEPENDENCY is not permitted


def test_allowed_option_counts():
    assert len(ALLOWED_OPTIONS["ww"]) == 2
    assert len(ALLOWED_OPTIONS["wr"]) == 3
    assert len(ALLOWED_OPTIONS["rw"]) == 3
    assert len(ALLOWED_OPTIONS["rr"]) == 5
    assert len(ALLOWED_OPTIONS_NO_DEP["rr"]) == 3


@pytest.mark.parametrize(
    "name, reference",
    [("M4444", SC), ("M4044", TSO), ("M4144", IBM370), ("M1044", PSO)],
)
def test_known_correspondences_agree_on_named_tests(name, reference):
    """M4444=SC, M4044=TSO/x86, M4144=IBM370, M1044=PSO (Figure 4 annotations)."""
    checker = ExplicitChecker()
    parametric = parametric_model(name)
    for test in [TEST_A] + L_TESTS:
        assert (
            checker.check(test, parametric).allowed == checker.check(test, reference).allowed
        ), f"{name} and {reference.name} disagree on {test.name}"


def test_known_correspondences_table_mentions_sc_and_tso():
    assert KNOWN_CORRESPONDENCES["M4444"] == "SC"
    assert "TSO" in KNOWN_CORRESPONDENCES["M4044"]


def test_formula_contains_fence_ordering():
    model = parametric_model("M1010")
    assert "Fence(x)" in str(model.formula)
    assert "Fence(y)" in str(model.formula)


def test_dependency_free_models_use_no_dep_predicates():
    model = parametric_model("M1010")
    assert not model.predicates.has_data_dep
    dependent = parametric_model("M1013")
    assert dependent.predicates.has_data_dep
