"""Tests for concrete execution evaluation (registers, addresses, dependencies)."""

import pytest

from repro.core.execution import Execution, ExecutionError
from repro.core.expr import BinOp, Loc, Reg
from repro.core.instructions import Branch, Fence, Load, Op, Store
from repro.core.program import Program, Thread


def dependent_read_program() -> Program:
    """T1: MP writer with fence; T2: address-dependent reader (the L4 shape)."""
    return Program(
        [
            Thread("T1", [Store("X", 1), Fence(), Store("Y", 2)]),
            Thread(
                "T2",
                [
                    Load("r1", "Y"),
                    Op("t1", BinOp("+", BinOp("-", Reg("r1"), Reg("r1")), Loc("X"))),
                    Load("r2", Reg("t1")),
                ],
            ),
        ]
    )


def test_missing_load_value_raises():
    with pytest.raises(ExecutionError, match="no observed value"):
        Execution(dependent_read_program(), {(1, 0): 2})


def test_addresses_and_values_resolve():
    execution = Execution(dependent_read_program(), {(1, 0): 2, (1, 2): 0})
    writes = execution.stores()
    assert [execution.location_of(w) for w in writes] == ["X", "Y"]
    assert [execution.value_of(w) for w in writes] == [1, 2]
    dependent_load = execution.event(1, 2)
    assert execution.location_of(dependent_load) == "X"
    assert execution.value_of(dependent_load) == 0


def test_register_values_follow_loads_and_ops():
    execution = Execution(dependent_read_program(), {(1, 0): 2, (1, 2): 0})
    assert execution.registers[1]["r1"] == 2
    assert execution.registers[1]["r2"] == 0
    assert execution.final_registers() == {"r1": 2, "r2": 0}


def test_data_dependency_through_address():
    execution = Execution(dependent_read_program(), {(1, 0): 2, (1, 2): 0})
    first = execution.event(1, 0)
    second = execution.event(1, 2)
    assert execution.data_dependent(first, second)
    assert not execution.data_dependent(second, first)


def test_data_dependency_through_value():
    program = Program(
        [
            Thread(
                "T1",
                [
                    Load("r1", "X"),
                    Op("t1", BinOp("+", BinOp("-", Reg("r1"), Reg("r1")), 1)),
                    Store("Y", Reg("t1")),
                ],
            )
        ]
    )
    execution = Execution(program, {(0, 0): 0})
    load = execution.event(0, 0)
    store = execution.event(0, 2)
    assert execution.data_dependent(load, store)
    assert execution.value_of(store) == 1


def test_independent_accesses_are_not_data_dependent():
    program = Program([Thread("T1", [Load("r1", "X"), Store("Y", 1)])])
    execution = Execution(program, {(0, 0): 0})
    assert not execution.data_dependent(execution.event(0, 0), execution.event(0, 1))


def test_control_dependency_via_branch():
    program = Program(
        [
            Thread(
                "T1",
                [
                    Load("r1", "X"),
                    Branch(Reg("r1")),
                    Store("Y", 1),
                    Load("r2", "Z"),
                ],
            )
        ]
    )
    execution = Execution(program, {(0, 0): 1, (0, 3): 0})
    load = execution.event(0, 0)
    assert execution.control_dependent(load, execution.event(0, 2))
    assert execution.control_dependent(load, execution.event(0, 3))
    assert not execution.control_dependent(load, execution.event(0, 1))  # not the branch itself
    assert not execution.data_dependent(load, execution.event(0, 2))


def test_no_control_dependency_before_branch():
    program = Program(
        [Thread("T1", [Load("r1", "X"), Store("Y", 1), Branch(Reg("r1")), Store("Z", 1)])]
    )
    execution = Execution(program, {(0, 0): 0})
    load = execution.event(0, 0)
    assert not execution.control_dependent(load, execution.event(0, 1))
    assert execution.control_dependent(load, execution.event(0, 3))


def test_same_address_predicate():
    program = Program(
        [Thread("T1", [Store("X", 1), Load("r1", "X"), Load("r2", "Y")])]
    )
    execution = Execution(program, {(0, 1): 1, (0, 2): 0})
    store = execution.event(0, 0)
    assert execution.same_address(store, execution.event(0, 1))
    assert not execution.same_address(store, execution.event(0, 2))


def test_same_address_is_false_for_non_memory_events():
    program = Program([Thread("T1", [Store("X", 1), Fence()])])
    execution = Execution(program, {})
    assert not execution.same_address(execution.event(0, 0), execution.event(0, 1))


def test_initial_values_default_to_zero_and_can_be_overridden():
    program = Program([Thread("T1", [Load("r1", "X")])])
    execution = Execution(program, {(0, 0): 7}, initial_values={"X": 7})
    assert execution.initial_value("X") == 7
    assert execution.initial_value("Y") == 0


def test_stores_to_filters_by_location():
    program = Program(
        [Thread("T1", [Store("X", 1), Store("Y", 2), Store("X", 3)])]
    )
    execution = Execution(program, {})
    assert [execution.value_of(s) for s in execution.stores_to("X")] == [1, 3]
    assert execution.locations() == ["X", "Y"]


def test_store_of_location_value_is_rejected():
    program = Program([Thread("T1", [Store("X", Loc("Y"))])])
    with pytest.raises(ExecutionError, match="non-integer"):
        Execution(program, {})
