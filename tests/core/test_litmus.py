"""Tests for litmus tests and outcomes."""

import pytest

from repro.core.instructions import Fence, Load, Store
from repro.core.litmus import LitmusTest, Outcome
from repro.core.program import Program, Thread


def sb_program() -> Program:
    return Program(
        [
            Thread("T1", [Store("X", 1), Load("r1", "Y")]),
            Thread("T2", [Store("Y", 1), Load("r2", "X")]),
        ]
    )


def test_outcome_canonicalises_order():
    outcome = Outcome({(1, 1): 0, (0, 1): 0})
    assert outcome.read_values == (((0, 1), 0), ((1, 1), 0))
    assert len(outcome) == 2


def test_litmus_requires_values_for_every_load():
    with pytest.raises(ValueError, match="does not give a value"):
        LitmusTest("SB", sb_program(), {(0, 1): 0})


def test_from_register_outcome():
    test = LitmusTest.from_register_outcome("SB", sb_program(), {"r1": 0, "r2": 0})
    assert test.outcome.as_dict() == {(0, 1): 0, (1, 1): 0}
    assert test.register_outcome() == {"r1": 0, "r2": 0}


def test_from_register_outcome_requires_all_load_registers():
    with pytest.raises(ValueError, match="does not constrain"):
        LitmusTest.from_register_outcome("SB", sb_program(), {"r1": 0})


def test_counts():
    test = LitmusTest.from_register_outcome("SB", sb_program(), {"r1": 0, "r2": 0})
    assert test.num_memory_accesses() == 4
    assert test.num_threads() == 2


def test_execution_reflects_outcome():
    test = LitmusTest.from_register_outcome("SB", sb_program(), {"r1": 0, "r2": 1})
    execution = test.execution()
    assert execution.value_of(execution.event(0, 1)) == 0
    assert execution.value_of(execution.event(1, 1)) == 1


def test_pretty_contains_threads_and_outcome():
    test = LitmusTest.from_register_outcome("SB", sb_program(), {"r1": 0, "r2": 0})
    rendered = test.pretty()
    assert "Test SB" in rendered
    assert "T1" in rendered and "T2" in rendered
    assert "Write X <- 1" in rendered
    assert "r1 = 0" in rendered and "r2 = 0" in rendered
    assert str(test) == rendered


def test_pretty_handles_threads_of_different_lengths():
    program = Program(
        [
            Thread("T1", [Store("X", 1)]),
            Thread("T2", [Load("r1", "X"), Fence(), Load("r2", "X")]),
        ]
    )
    test = LitmusTest.from_register_outcome("W+RR", program, {"r1": 1, "r2": 0})
    lines = test.pretty().splitlines()
    assert len(lines) == 2 + 3 + 1  # header + 3 instruction rows + outcome
