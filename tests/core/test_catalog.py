"""Tests for the catalog of named hardware models."""

import pytest

from repro.core.catalog import ALPHA, IBM370, PSO, RMO, SC, TSO, X86, catalog_summary, named_models
from repro.core.execution import Execution
from repro.core.instructions import Fence, Load, Store
from repro.core.program import Program, Thread


@pytest.fixture()
def execution():
    program = Program(
        [
            Thread("T1", [Store("X", 1), Load("r1", "X"), Load("r2", "Y"), Fence(), Store("Y", 2)]),
        ]
    )
    return Execution(program, {(0, 1): 1, (0, 2): 0})


def test_named_models_contains_the_paper_models():
    models = named_models()
    for name in ("SC", "TSO", "x86", "PSO", "RMO", "IBM370", "Alpha"):
        assert name in models


def test_sc_orders_everything(execution):
    store_x, load_x, load_y, fence, store_y = execution.events
    assert SC.ordered(execution, store_x, load_y)
    assert SC.ordered(execution, load_y, store_y)


def test_tso_relaxes_only_write_to_read(execution):
    store_x, load_x, load_y, fence, store_y = execution.events
    # write -> read (same or different address) may be reordered
    assert not TSO.ordered(execution, store_x, load_x)
    assert not TSO.ordered(execution, store_x, load_y)
    # read -> anything stays ordered; write -> write stays ordered
    assert TSO.ordered(execution, load_x, load_y)
    assert TSO.ordered(execution, load_y, store_y)
    assert TSO.ordered(execution, store_x, store_y)
    # fences order everything around them
    assert TSO.ordered(execution, fence, store_y)
    assert TSO.ordered(execution, load_y, fence)


def test_x86_is_the_same_function_as_tso():
    assert X86.must_not_reorder == TSO.must_not_reorder
    assert X86.name == "x86"


def test_ibm370_orders_same_address_write_read(execution):
    store_x, load_x, load_y, fence, store_y = execution.events
    assert IBM370.ordered(execution, store_x, load_x)  # same address
    assert not IBM370.ordered(execution, store_x, load_y)  # different address


def test_pso_relaxes_different_address_writes(execution):
    store_x, load_x, load_y, fence, store_y = execution.events
    assert not PSO.ordered(execution, store_x, store_y)
    assert PSO.ordered(execution, load_x, load_y)


def test_rmo_orders_dependencies_and_same_address_writes(execution):
    store_x, load_x, load_y, fence, store_y = execution.events
    assert not RMO.ordered(execution, load_x, load_y)
    assert not RMO.ordered(execution, store_x, load_y)
    # a write to the same address after a read is ordered
    program = Program([Thread("T1", [Load("r1", "X"), Store("X", 1)])])
    ex2 = Execution(program, {(0, 0): 0})
    load, store = ex2.events
    assert RMO.ordered(ex2, load, store)
    assert ALPHA.ordered(ex2, load, store)


def test_alpha_ignores_dependencies():
    from repro.core.expr import BinOp, Reg, Loc
    from repro.core.instructions import Op

    program = Program(
        [
            Thread(
                "T1",
                [
                    Load("r1", "X"),
                    Op("t1", BinOp("+", BinOp("-", Reg("r1"), Reg("r1")), Loc("Y"))),
                    Load("r2", Reg("t1")),
                ],
            )
        ]
    )
    execution = Execution(program, {(0, 0): 0, (0, 2): 0})
    first, _, second = execution.events
    assert execution.data_dependent(first, second)
    assert not ALPHA.ordered(execution, first, second)
    assert RMO.ordered(execution, first, second)


def test_all_catalog_formulas_are_positive():
    for model in named_models().values():
        assert model.formula is not None
        assert model.formula.is_positive()


def test_catalog_summary_mentions_every_model():
    summary = "\n".join(catalog_summary())
    for name in named_models():
        assert name in summary
