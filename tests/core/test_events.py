"""Tests for instruction executions (events)."""

from repro.core.events import build_events, flatten_events
from repro.core.instructions import Branch, Fence, Load, Op, Store
from repro.core.expr import Reg
from repro.core.program import Program, Thread


def make_events():
    program = Program(
        [
            Thread("T1", [Store("X", 1), Fence(), Load("r1", "Y")]),
            Thread("T2", [Load("r2", "Y"), Op("t1", Reg("r2") + 1), Branch(Reg("r2")), Store("X", Reg("t1"))]),
        ]
    )
    return build_events(program)


def test_build_events_shape():
    events = make_events()
    assert len(events) == 2
    assert [len(thread_events) for thread_events in events] == [3, 4]


def test_event_uids_are_unique_and_readable():
    events = flatten_events(make_events())
    uids = [event.uid for event in events]
    assert len(set(uids)) == len(uids)
    assert uids[0] == "T1.0"


def test_event_classification():
    events = make_events()
    store, fence, load = events[0]
    assert store.is_write and store.is_memory_access and not store.is_read
    assert fence.is_fence and not fence.is_memory_access
    assert load.is_read
    read, op, branch, write = events[1]
    assert op.is_op and branch.is_branch
    assert write.is_write


def test_program_order_relation():
    events = make_events()
    store, fence, load = events[0]
    other_read = events[1][0]
    assert store.program_order_before(load)
    assert not load.program_order_before(store)
    assert not store.program_order_before(other_read)  # different threads
    assert store.same_thread(fence)
    assert not store.same_thread(other_read)


def test_flatten_is_thread_major():
    events = flatten_events(make_events())
    assert [event.thread_index for event in events] == [0, 0, 0, 1, 1, 1, 1]
