"""Tests for the instruction set."""

from repro.core.expr import Loc, Reg
from repro.core.instructions import Branch, Fence, Load, Op, Store, make_dependency_op


def test_load_accepts_string_address():
    load = Load("r1", "X")
    assert load.address == Loc("X")
    assert load.is_memory_access
    assert load.registers_written() == frozenset({"r1"})
    assert load.registers_read() == frozenset()


def test_load_with_register_indirect_address():
    load = Load("r2", Reg("t1"))
    assert load.registers_read() == frozenset({"t1"})
    assert "t1" in str(load)


def test_store_accepts_int_and_register_values():
    store = Store("X", 1)
    assert store.is_memory_access
    assert store.registers_read() == frozenset()
    dependent = Store("Y", Reg("t1"))
    assert dependent.registers_read() == frozenset({"t1"})


def test_fence_is_not_a_memory_access():
    fence = Fence()
    assert not fence.is_memory_access
    assert str(fence) == "Fence"
    assert str(Fence("acquire")) == "Fence.acquire"


def test_op_reads_and_writes_registers():
    op = Op("t1", Reg("r1") + 1)
    assert op.registers_read() == frozenset({"r1"})
    assert op.registers_written() == frozenset({"t1"})
    assert not op.is_memory_access


def test_branch_reads_condition_registers():
    branch = Branch(Reg("r1"))
    assert branch.registers_read() == frozenset({"r1"})
    assert not branch.is_memory_access


def test_make_dependency_op_builds_cancelling_expression():
    op = make_dependency_op("t1", "r1", 5)
    assert op.dest == "t1"
    assert op.registers_read() == frozenset({"r1"})
    assert "r1-r1" in str(op).replace(" ", "")


def test_instructions_are_hashable_and_comparable():
    assert Load("r1", "X") == Load("r1", "X")
    assert Load("r1", "X") != Load("r1", "Y")
    assert len({Store("X", 1), Store("X", 1), Store("X", 2)}) == 2
