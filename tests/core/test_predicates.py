"""Tests for predicates and predicate sets."""

import pytest

from repro.core.execution import Execution
from repro.core.instructions import Fence, Load, Op, Store
from repro.core.expr import BinOp, Reg
from repro.core.predicates import (
    ANY_DEP,
    CTRL_DEP,
    DATA_DEP,
    EXTENDED_PREDICATES,
    FENCE,
    NO_DEP_PREDICATES,
    PredicateSet,
    READ,
    SAME_ADDR,
    STANDARD_PREDICATES,
    WRITE,
    binary,
    default_registry,
    unary,
)
from repro.core.program import Program, Thread


@pytest.fixture()
def execution():
    program = Program(
        [
            Thread(
                "T1",
                [
                    Load("r1", "X"),
                    Op("t1", BinOp("+", BinOp("-", Reg("r1"), Reg("r1")), 1)),
                    Store("Y", Reg("t1")),
                    Fence(),
                    Store("X", 2),
                ],
            )
        ]
    )
    return Execution(program, {(0, 0): 0})


def test_unary_predicates(execution):
    load, op, store_y, fence, store_x = execution.events
    assert READ.evaluate(execution, load)
    assert WRITE.evaluate(execution, store_y)
    assert FENCE.evaluate(execution, fence)
    assert not READ.evaluate(execution, store_y)


def test_binary_predicates(execution):
    load, op, store_y, fence, store_x = execution.events
    assert SAME_ADDR.evaluate(execution, load, store_x)
    assert not SAME_ADDR.evaluate(execution, load, store_y)
    assert DATA_DEP.evaluate(execution, load, store_y)
    assert not DATA_DEP.evaluate(execution, load, store_x)
    assert not CTRL_DEP.evaluate(execution, load, store_y)
    assert ANY_DEP.evaluate(execution, load, store_y)


def test_binary_predicate_requires_second_event(execution):
    load = execution.events[0]
    with pytest.raises(ValueError):
        SAME_ADDR.evaluate(execution, load)


def test_predicate_set_features():
    assert STANDARD_PREDICATES.has_fence
    assert STANDARD_PREDICATES.has_data_dep
    assert not STANDARD_PREDICATES.has_ctrl_dep
    assert NO_DEP_PREDICATES.has_same_addr
    assert not NO_DEP_PREDICATES.has_data_dep
    assert EXTENDED_PREDICATES.has_ctrl_dep


def test_predicate_set_lookup_and_iteration():
    assert "Read" in STANDARD_PREDICATES
    assert STANDARD_PREDICATES.get("Read") is READ
    assert len(list(STANDARD_PREDICATES)) == len(STANDARD_PREDICATES)
    assert set(STANDARD_PREDICATES.names()) == {"Read", "Write", "Fence", "SameAddr", "DataDep"}


def test_predicate_set_rejects_duplicates():
    with pytest.raises(ValueError):
        PredicateSet([READ, READ])


def test_with_predicates_extends():
    extended = NO_DEP_PREDICATES.with_predicates([DATA_DEP])
    assert extended.has_data_dep
    assert not NO_DEP_PREDICATES.has_data_dep  # original unchanged


def test_custom_predicate(execution):
    is_store_to_x = unary("StoreToX", lambda e, x: x.is_write and e.location_of(x) == "X")
    load, op, store_y, fence, store_x = execution.events
    assert is_store_to_x.evaluate(execution, store_x)
    assert not is_store_to_x.evaluate(execution, store_y)
    same_thread = binary("SameThread", lambda e, x, y: x.same_thread(y))
    assert same_thread.evaluate(execution, load, store_x)


def test_default_registry_contains_all_builtins():
    registry = default_registry()
    for name in ("Read", "Write", "Fence", "SameAddr", "DataDep", "CtrlDep", "Dep", "MemAccess"):
        assert name in registry
