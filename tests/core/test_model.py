"""Tests for the MemoryModel wrapper."""

import pytest

from repro.core.execution import Execution
from repro.core.formula import Atom, parse_formula
from repro.core.instructions import Fence, Load, Store
from repro.core.model import MemoryModel
from repro.core.predicates import NO_DEP_PREDICATES
from repro.core.program import Program, Thread


@pytest.fixture()
def execution():
    program = Program([Thread("T1", [Store("X", 1), Fence(), Load("r1", "X"), Load("r2", "Y")])])
    return Execution(program, {(0, 2): 1, (0, 3): 0})


def test_model_from_dsl_string(execution):
    model = MemoryModel("WW-only", "Write(x) & Write(y)")
    store, fence, load_x, load_y = execution.events
    assert not model.ordered(execution, store, load_x)
    assert model.formula is not None
    assert model.is_formula_defined()


def test_model_from_formula_object(execution):
    model = MemoryModel("reads", Atom("Read", ("x",)))
    _, _, load_x, load_y = execution.events
    assert model.ordered(execution, load_x, load_y)


def test_model_from_callable(execution):
    model = MemoryModel("same-thread", lambda e, x, y: x.same_thread(y))
    store, fence, load_x, load_y = execution.events
    assert model.ordered(execution, store, load_y)
    assert model.formula is None
    assert "python function" in str(model)


def test_renamed_keeps_function(execution):
    model = MemoryModel("TSO-like", "Read(x)")
    renamed = model.renamed("x86-like")
    assert renamed.name == "x86-like"
    store, fence, load_x, load_y = execution.events
    assert renamed.ordered(execution, load_x, load_y) == model.ordered(execution, load_x, load_y)


def test_model_equality_is_syntactic():
    first = MemoryModel("A", "Read(x)")
    second = MemoryModel("A", parse_formula("Read(x)"))
    third = MemoryModel("B", "Read(x)")
    assert first == second
    assert first != third
    assert hash(first) == hash(second)


def test_model_uses_custom_predicate_set(execution):
    model = MemoryModel("nodep", "Read(x)", NO_DEP_PREDICATES)
    assert model.predicates is NO_DEP_PREDICATES
    assert "Read(x)" in str(model)
