"""Tests for test sketches (address constraints and concretisation)."""

import pytest

from repro.core.instructions import Branch, Fence, Load, Op, Store
from repro.generation.segments import AccessKind, LinkKind
from repro.generation.sketch import AccessSketch, TestSketch


def simple_sketch() -> TestSketch:
    sketch = TestSketch()
    sketch.add_thread(
        [AccessSketch(AccessKind.WRITE, "a0"), AccessSketch(AccessKind.READ, "a1")]
    )
    sketch.add_thread(
        [AccessSketch(AccessKind.WRITE, "b0"), AccessSketch(AccessKind.READ, "b1")]
    )
    sketch.require_different("a0", "a1")
    sketch.require_different("b0", "b1")
    sketch.require_equal("b1", "a0")
    sketch.require_equal("b0", "a1")
    sketch.set_read_from((0, 1), None)
    sketch.set_read_from((1, 1), None)
    return sketch


def test_feasible_sketch_produces_store_buffering():
    test = simple_sketch().to_litmus_test("SB")
    assert test is not None
    assert test.num_memory_accesses() == 4
    assert test.program.locations() == ["X", "Y"]
    assert all(value == 0 for value in test.register_outcome().values())


def test_contradictory_constraints_are_infeasible():
    sketch = simple_sketch()
    sketch.require_equal("a0", "a1")  # contradicts require_different
    assert not sketch.is_feasible()
    assert sketch.to_litmus_test("broken") is None


def test_fence_link_materialises_a_fence():
    sketch = TestSketch()
    sketch.add_thread(
        [
            AccessSketch(AccessKind.WRITE, "a0"),
            AccessSketch(AccessKind.WRITE, "a1", LinkKind.FENCE),
        ]
    )
    sketch.require_different("a0", "a1")
    test = sketch.to_litmus_test("fenced")
    kinds = [type(i) for i in test.program.threads[0].instructions]
    assert kinds == [Store, Fence, Store]


def test_data_dependency_to_read_uses_address_idiom():
    sketch = TestSketch()
    sketch.add_thread(
        [
            AccessSketch(AccessKind.READ, "a0"),
            AccessSketch(AccessKind.READ, "a1", LinkKind.DATA_DEP),
        ]
    )
    sketch.require_different("a0", "a1")
    sketch.set_read_from((0, 0), None)
    sketch.set_read_from((0, 1), None)
    test = sketch.to_litmus_test("dep-read")
    instructions = test.program.threads[0].instructions
    assert [type(i) for i in instructions] == [Load, Op, Load]
    execution = test.execution()
    assert execution.data_dependent(execution.event(0, 0), execution.event(0, 2))


def test_data_dependency_to_write_uses_value_idiom():
    sketch = TestSketch()
    sketch.add_thread(
        [
            AccessSketch(AccessKind.READ, "a0"),
            AccessSketch(AccessKind.WRITE, "a1", LinkKind.DATA_DEP),
        ]
    )
    sketch.require_different("a0", "a1")
    sketch.set_read_from((0, 0), None)
    test = sketch.to_litmus_test("dep-write")
    instructions = test.program.threads[0].instructions
    assert [type(i) for i in instructions] == [Load, Op, Store]
    execution = test.execution()
    assert execution.data_dependent(execution.event(0, 0), execution.event(0, 2))
    assert execution.value_of(execution.event(0, 2)) == 1


def test_control_dependency_inserts_branch():
    sketch = TestSketch()
    sketch.add_thread(
        [
            AccessSketch(AccessKind.READ, "a0"),
            AccessSketch(AccessKind.WRITE, "a1", LinkKind.CTRL_DEP),
        ]
    )
    sketch.require_different("a0", "a1")
    sketch.set_read_from((0, 0), None)
    test = sketch.to_litmus_test("ctrl")
    instructions = test.program.threads[0].instructions
    assert [type(i) for i in instructions] == [Load, Branch, Store]
    execution = test.execution()
    assert execution.control_dependent(execution.event(0, 0), execution.event(0, 2))


def test_dependency_without_preceding_read_is_an_error():
    sketch = TestSketch()
    sketch.add_thread(
        [
            AccessSketch(AccessKind.WRITE, "a0"),
            AccessSketch(AccessKind.WRITE, "a1", LinkKind.DATA_DEP),
        ]
    )
    with pytest.raises(ValueError, match="without a preceding read"):
        sketch.to_litmus_test("bad")


def test_write_values_are_distinct_per_location():
    sketch = TestSketch()
    sketch.add_thread(
        [AccessSketch(AccessKind.WRITE, "a0"), AccessSketch(AccessKind.WRITE, "a1")]
    )
    sketch.add_thread([AccessSketch(AccessKind.READ, "b0")])
    sketch.require_equal("a0", "a1")
    sketch.require_equal("b0", "a0")
    sketch.set_read_from((1, 0), (0, 1))
    test = sketch.to_litmus_test("coherence")
    execution = test.execution()
    values = [execution.value_of(store) for store in execution.stores()]
    assert values == [1, 2]
    assert test.register_outcome() == {"r20": 2}


def test_read_from_specification_sets_outcome_values():
    sketch = simple_sketch()
    sketch.set_read_from((0, 1), (1, 0))  # T1's read now observes T2's write
    test = sketch.to_litmus_test("SB-variant")
    outcome = test.register_outcome()
    assert sorted(outcome.values()) == [0, 1]
