"""Tests for the seven templates of Figure 2."""

import pytest

from repro.checker.explicit import is_allowed
from repro.core.catalog import SC
from repro.core.parametric import parametric_model
from repro.generation.segments import AddressRelation, LinkKind, Segment, SegmentKind
from repro.generation.templates import TemplateCase, instantiate_template


def seg(kind, link=LinkKind.NONE, relation=AddressRelation.DIFFERENT) -> Segment:
    return Segment(kind, link, relation)


def test_expected_segment_kinds_per_case():
    assert TemplateCase.CASE_1_READ_WRITE.expected_segment_kinds == (SegmentKind.RW,)
    assert TemplateCase.CASE_3B_READ_READ_VS_WRITE_READ_WRITE.expected_segment_kinds == (
        SegmentKind.RR,
        SegmentKind.WR,
        SegmentKind.RW,
    )


def test_instantiate_validates_segment_kinds():
    with pytest.raises(ValueError, match="expects segment kinds"):
        instantiate_template(TemplateCase.CASE_1_READ_WRITE, [seg(SegmentKind.WW)])
    with pytest.raises(ValueError, match="needs 2 segments"):
        instantiate_template(TemplateCase.CASE_5A_WRITE_READ_SAME_PLUS_READ_READ, [seg(SegmentKind.WR)])


def test_case_1_produces_load_buffering():
    instance = instantiate_template(TemplateCase.CASE_1_READ_WRITE, [seg(SegmentKind.RW)])
    test = instance.to_litmus_test()
    assert test is not None
    assert test.num_threads() == 2
    assert test.num_memory_accesses() == 4
    # The LB outcome is forbidden under SC but allowed when read-write reorders.
    assert not is_allowed(test, SC)
    assert is_allowed(test, parametric_model("M1010"))
    assert not is_allowed(test, parametric_model("M1040"))


def test_case_2_produces_2_plus_2w_shape():
    instance = instantiate_template(TemplateCase.CASE_2_WRITE_WRITE, [seg(SegmentKind.WW)])
    test = instance.to_litmus_test()
    assert test.num_memory_accesses() == 6
    assert not is_allowed(test, SC)
    assert is_allowed(test, parametric_model("M1010"))  # ww relaxed
    assert not is_allowed(test, parametric_model("M4010"))  # ww ordered


def test_case_3a_produces_message_passing():
    instance = instantiate_template(
        TemplateCase.CASE_3A_READ_READ_VS_WRITE_WRITE,
        [seg(SegmentKind.RR, LinkKind.FENCE), seg(SegmentKind.WW)],
    )
    test = instance.to_litmus_test()
    assert test.num_memory_accesses() == 4
    assert not is_allowed(test, SC)
    # With the reads fenced, only write-write reordering can produce the outcome.
    assert is_allowed(test, parametric_model("M1044"))
    assert not is_allowed(test, parametric_model("M4044"))


def test_case_3a_with_mismatched_relations_is_infeasible():
    instance = instantiate_template(
        TemplateCase.CASE_3A_READ_READ_VS_WRITE_WRITE,
        [
            seg(SegmentKind.RR, relation=AddressRelation.SAME),
            seg(SegmentKind.WW, relation=AddressRelation.DIFFERENT),
        ],
    )
    assert instance.to_litmus_test() is None
    assert not instance.sketch().is_feasible()


def test_case_3a_same_same_produces_coherence_test():
    instance = instantiate_template(
        TemplateCase.CASE_3A_READ_READ_VS_WRITE_WRITE,
        [
            seg(SegmentKind.RR, relation=AddressRelation.SAME),
            seg(SegmentKind.WW, relation=AddressRelation.SAME),
        ],
    )
    test = instance.to_litmus_test()
    assert test is not None
    assert len(test.program.locations()) == 1
    assert not is_allowed(test, SC)
    assert is_allowed(test, parametric_model("M1010"))  # rr fully relaxed


def test_case_4_produces_store_buffering():
    instance = instantiate_template(TemplateCase.CASE_4_WRITE_READ_DIFFERENT, [seg(SegmentKind.WR)])
    test = instance.to_litmus_test()
    assert test.num_memory_accesses() == 4
    assert not is_allowed(test, SC)
    assert is_allowed(test, parametric_model("M4044"))  # TSO-like
    assert not is_allowed(test, parametric_model("M4444"))


def test_case_5a_produces_l8_shape():
    instance = instantiate_template(
        TemplateCase.CASE_5A_WRITE_READ_SAME_PLUS_READ_READ,
        [
            seg(SegmentKind.WR, relation=AddressRelation.SAME),
            seg(SegmentKind.RR, LinkKind.DATA_DEP, AddressRelation.DIFFERENT),
        ],
    )
    test = instance.to_litmus_test()
    assert test.num_memory_accesses() == 6
    assert is_allowed(test, parametric_model("M4044"))  # TSO forwards
    assert not is_allowed(test, parametric_model("M4144"))  # IBM370 does not


def test_case_5b_produces_l9_shape():
    instance = instantiate_template(
        TemplateCase.CASE_5B_WRITE_READ_SAME_PLUS_READ_WRITE,
        [
            seg(SegmentKind.WR, relation=AddressRelation.SAME),
            seg(SegmentKind.RW, LinkKind.DATA_DEP, AddressRelation.DIFFERENT),
        ],
    )
    test = instance.to_litmus_test()
    assert test.num_memory_accesses() == 6
    assert is_allowed(test, parametric_model("M1044"))
    assert not is_allowed(test, parametric_model("M1144"))


def test_labels_identify_case_and_segments():
    instance = instantiate_template(TemplateCase.CASE_1_READ_WRITE, [seg(SegmentKind.RW)])
    assert instance.label == "C1(RW[none,diff])"
    assert instance.to_litmus_test().name == instance.label


def test_all_feasible_templates_satisfy_theorem_bounds():
    from repro.generation.suite import standard_suite

    for entry in standard_suite():
        if entry.test is None:
            continue
        assert entry.test.num_threads() == 2
        assert entry.test.num_memory_accesses() <= 6
