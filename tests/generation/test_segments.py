"""Tests for local-segment enumeration."""

import pytest

from repro.core.predicates import (
    EXTENDED_PREDICATES,
    NO_DEP_PREDICATES,
    PredicateSet,
    READ,
    STANDARD_PREDICATES,
    WRITE,
)
from repro.generation.segments import (
    AccessKind,
    AddressRelation,
    LinkKind,
    Segment,
    enumerate_all_segments,
    enumerate_segments,
    segment_count,
    SegmentKind,
)


def test_segment_kind_accessors():
    assert SegmentKind.RW.first is AccessKind.READ
    assert SegmentKind.RW.second is AccessKind.WRITE
    assert SegmentKind.WW.first is AccessKind.WRITE


def test_dependency_links_require_a_leading_read():
    Segment(SegmentKind.RW, LinkKind.DATA_DEP, AddressRelation.DIFFERENT)  # fine
    with pytest.raises(ValueError):
        Segment(SegmentKind.WR, LinkKind.DATA_DEP, AddressRelation.DIFFERENT)
    with pytest.raises(ValueError):
        Segment(SegmentKind.WW, LinkKind.CTRL_DEP, AddressRelation.SAME)


def test_segment_counts_match_paper_standard_set():
    """Section 3.4: N_RW = N_RR = 6 and N_WR = N_WW = 4."""
    assert segment_count(SegmentKind.RW, STANDARD_PREDICATES) == 6
    assert segment_count(SegmentKind.RR, STANDARD_PREDICATES) == 6
    assert segment_count(SegmentKind.WR, STANDARD_PREDICATES) == 4
    assert segment_count(SegmentKind.WW, STANDARD_PREDICATES) == 4


def test_segment_counts_without_dependencies():
    for kind in SegmentKind:
        assert segment_count(kind, NO_DEP_PREDICATES) == 4


def test_segment_counts_with_control_dependencies():
    assert segment_count(SegmentKind.RR, EXTENDED_PREDICATES) == 8
    assert segment_count(SegmentKind.WW, EXTENDED_PREDICATES) == 4


def test_segment_counts_without_same_addr_predicate():
    predicates = PredicateSet([READ, WRITE])
    assert segment_count(SegmentKind.RR, predicates) == 1
    assert segment_count(SegmentKind.RW, predicates) == 1


def test_enumerate_segments_are_distinct():
    segments = enumerate_segments(SegmentKind.RR, STANDARD_PREDICATES)
    assert len(set(segments)) == len(segments)
    labels = {segment.label for segment in segments}
    assert "RR[data,same]" in labels
    assert "RR[fence,diff]" in labels


def test_enumerate_all_segments_covers_every_kind():
    by_kind = enumerate_all_segments(STANDARD_PREDICATES)
    assert set(by_kind) == set(SegmentKind)
    assert sum(len(v) for v in by_kind.values()) == 20


def test_segment_label_and_str():
    segment = Segment(SegmentKind.WR, LinkKind.FENCE, AddressRelation.SAME)
    assert str(segment) == "WR[fence,same]" == segment.label
