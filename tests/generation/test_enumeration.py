"""Tests for the naive bounded enumeration baseline."""

import pytest

from repro.checker.explicit import is_allowed
from repro.core.catalog import SC
from repro.generation.enumeration import (
    NaiveEnumerationConfig,
    count_naive_tests,
    enumerate_naive_tests,
)


def small_config() -> NaiveEnumerationConfig:
    return NaiveEnumerationConfig(
        max_accesses_per_thread=2, max_locations=2, allow_fences=False
    )


def test_config_validation():
    with pytest.raises(ValueError):
        NaiveEnumerationConfig(min_accesses_per_thread=0)
    with pytest.raises(ValueError):
        NaiveEnumerationConfig(max_accesses_per_thread=1, min_accesses_per_thread=2)
    with pytest.raises(ValueError):
        NaiveEnumerationConfig(num_threads=0)


def test_count_matches_raw_enumeration_for_small_config():
    config = small_config()
    count = count_naive_tests(config)
    enumerated = sum(1 for _ in enumerate_naive_tests(config, raw=True))
    assert count == enumerated
    assert count > 0


def test_default_stream_is_symmetry_reduced():
    """The default stream collapses thread/location/value symmetry classes."""
    from repro.pipeline.canonical import canonical_key

    config = small_config()
    raw = list(enumerate_naive_tests(config, raw=True))
    unique = list(enumerate_naive_tests(config))
    assert len(unique) < len(raw)
    keys = [canonical_key(test) for test in unique]
    # one representative per class, and the classes cover the raw stream
    assert len(set(keys)) == len(keys)
    assert set(keys) == {canonical_key(test) for test in raw}


def test_limit_caps_the_enumeration():
    config = small_config()
    limited = list(enumerate_naive_tests(config, limit=10))
    assert len(limited) == 10
    raw_limited = list(enumerate_naive_tests(config, limit=10, raw=True))
    assert len(raw_limited) == 10


def test_generated_tests_are_well_formed_and_within_bounds():
    config = small_config()
    for test in enumerate_naive_tests(config, limit=50):
        test.program.validate()
        assert test.num_threads() == 2
        assert test.num_memory_accesses() <= 4
        test.execution()  # evaluates without error


def test_naive_space_is_much_larger_than_the_template_suite():
    """The paper's point: naive enumeration is orders of magnitude larger than 124."""
    config = NaiveEnumerationConfig(
        max_accesses_per_thread=2, max_locations=3, allow_fences=True
    )
    assert count_naive_tests(config) > 10 * 124


def test_single_thread_enumeration():
    config = NaiveEnumerationConfig(
        num_threads=1, max_accesses_per_thread=2, max_locations=1, allow_fences=False
    )
    tests = list(enumerate_naive_tests(config, raw=True))
    assert count_naive_tests(config) == len(tests)
    # Single-thread tests under SC: allowed iff they respect per-thread coherence.
    assert any(is_allowed(test, SC) for test in tests)
    assert any(not is_allowed(test, SC) for test in tests)


def test_canonical_location_naming_avoids_renaming_duplicates():
    config = NaiveEnumerationConfig(
        max_accesses_per_thread=1, max_locations=2, allow_fences=False
    )
    tests = list(enumerate_naive_tests(config, raw=True))
    # With one access per thread, the first access always uses location X.
    assert all(test.program.locations()[0] == "X" for test in tests)
