"""Tests for the template suite generator."""

import pytest

from repro.core.predicates import EXTENDED_PREDICATES, STANDARD_PREDICATES
from repro.generation.counting import corollary1_count, per_case_counts, segment_counts
from repro.generation.suite import generate_suite, no_dependency_suite, standard_suite


@pytest.fixture(scope="module")
def std_suite():
    return standard_suite()


@pytest.fixture(scope="module")
def nodep_suite():
    return no_dependency_suite()


def test_standard_suite_has_230_instantiations(std_suite):
    assert std_suite.num_instantiations() == 230
    assert len(std_suite) == 230


def test_no_dependency_suite_has_124_instantiations(nodep_suite):
    assert nodep_suite.num_instantiations() == 124


def test_per_case_counts_match_corollary(std_suite):
    expected = per_case_counts(segment_counts(STANDARD_PREDICATES))
    assert std_suite.per_case() == expected


def test_feasible_tests_are_a_strict_subset(std_suite):
    assert 0 < std_suite.num_feasible() < std_suite.num_instantiations()
    assert len(std_suite.tests()) == std_suite.num_feasible()


def test_suite_test_names_are_unique(std_suite):
    names = [test.name for test in std_suite.tests()]
    assert len(set(names)) == len(names)


def test_every_feasible_test_is_well_formed(std_suite):
    for test in std_suite.tests():
        test.program.validate()
        execution = test.execution()  # must evaluate without errors
        assert execution.loads() or execution.stores()
        assert test.num_threads() == 2
        assert test.num_memory_accesses() <= 6


def test_every_feasible_test_values_are_obtainable(std_suite):
    """Each observed load value is the initial value or some same-location store value."""
    for test in std_suite.tests():
        execution = test.execution()
        for load in execution.loads():
            value = execution.value_of(load)
            location = execution.location_of(load)
            store_values = {execution.value_of(s) for s in execution.stores_to(location)}
            assert value == execution.initial_value(location) or value in store_values


def test_no_dependency_suite_contains_no_dependency_ops(nodep_suite):
    from repro.core.instructions import Op

    for test in nodep_suite.tests():
        for thread in test.program.threads:
            assert not any(isinstance(i, Op) for i in thread.instructions)


def test_extended_suite_with_control_dependencies():
    suite = generate_suite(EXTENDED_PREDICATES)
    assert suite.num_instantiations() == corollary1_count(segment_counts(EXTENDED_PREDICATES))
    from repro.core.instructions import Branch

    assert any(
        isinstance(instruction, Branch)
        for test in suite.tests()
        for thread in test.program.threads
        for instruction in thread.instructions
    )


def test_suite_segment_counts_accessor(std_suite):
    assert std_suite.segment_counts().as_dict() == {"ww": 4, "wr": 4, "rw": 6, "rr": 6}
