"""Tests for the named tests (Test A, L1..L9) as data objects."""

from repro.core.instructions import Fence, Load, Op, Store
from repro.generation.named_tests import L_TESTS, TEST_A, all_named_tests


def test_there_are_nine_l_tests_with_the_paper_names():
    assert [test.name for test in L_TESTS] == [f"L{i}" for i in range(1, 10)]


def test_all_named_tests_includes_test_a():
    named = all_named_tests()
    assert set(named) == {"A"} | {f"L{i}" for i in range(1, 10)}
    assert named["A"] is TEST_A


def test_every_named_test_is_two_threads_and_at_most_six_accesses():
    for test in all_named_tests().values():
        assert test.num_threads() == 2
        assert test.num_memory_accesses() <= 6


def test_test_a_matches_figure_1():
    assert TEST_A.register_outcome() == {"r1": 0, "r2": 2, "r3": 0}
    t1, t2 = TEST_A.program.threads
    assert [type(i) for i in t1.instructions] == [Store, Fence, Load]
    assert [type(i) for i in t2.instructions] == [Store, Load, Load]


def test_l4_l6_l8_l9_carry_data_dependencies():
    named = all_named_tests()
    for name in ("L4", "L6", "L8", "L9"):
        execution = named[name].execution()
        loads = execution.loads()
        dependent = any(
            execution.data_dependent(x, y)
            for x in loads
            for y in execution.memory_events()
            if x != y
        )
        assert dependent, f"{name} should contain a data dependency"


def test_l1_l2_l3_l5_l7_are_dependency_free():
    named = all_named_tests()
    for name in ("L1", "L2", "L3", "L5", "L7"):
        for thread in named[name].program.threads:
            assert not any(isinstance(i, Op) for i in thread.instructions)


def test_outcomes_match_figure_3():
    named = all_named_tests()
    assert named["L5"].register_outcome() == {"r1": 1, "r2": 1}
    assert named["L7"].register_outcome() == {"r1": 0, "r2": 0}
    assert named["L8"].register_outcome() == {"r1": 1, "r2": 0, "r3": 1, "r4": 0}
    assert named["L9"].register_outcome() == {"r1": 1, "r2": 1, "r3": 1}


def test_descriptions_present():
    for test in all_named_tests().values():
        assert test.description
