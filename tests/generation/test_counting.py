"""Tests for Corollary 1 counting."""

from repro.core.predicates import (
    EXTENDED_PREDICATES,
    NO_DEP_PREDICATES,
    STANDARD_PREDICATES,
)
from repro.generation.counting import (
    SegmentCounts,
    corollary1_count,
    corollary1_count_for,
    per_case_counts,
    segment_counts,
)


def test_segment_counts_for_standard_predicates():
    counts = segment_counts(STANDARD_PREDICATES)
    assert counts.as_dict() == {"ww": 4, "wr": 4, "rw": 6, "rr": 6}


def test_corollary1_reproduces_230():
    """Section 3.4: 230 tests with data dependencies."""
    assert corollary1_count_for(STANDARD_PREDICATES) == 230


def test_corollary1_reproduces_124():
    """Section 3.4: 124 tests without data dependencies."""
    assert corollary1_count_for(NO_DEP_PREDICATES) == 124


def test_corollary1_with_control_dependencies_extension():
    counts = segment_counts(EXTENDED_PREDICATES)
    assert counts.rw == counts.rr == 8
    assert corollary1_count(counts) == 8 + 4 + 8 * (4 + 4 * 8) + 4 * (1 + 8 + 8)


def test_corollary1_formula_matches_manual_expansion():
    counts = SegmentCounts(ww=2, wr=3, rw=5, rr=7)
    expected = 5 + 2 + 7 * (2 + 3 * 5) + 3 * (1 + 7 + 5)
    assert corollary1_count(counts) == expected


def test_per_case_counts_sum_to_total():
    counts = segment_counts(STANDARD_PREDICATES)
    cases = per_case_counts(counts)
    assert sum(cases.values()) == corollary1_count(counts)
    assert cases["3b"] == 6 * 4 * 6
    assert cases["4"] == 4
