"""Tests for the three IR lowerings: bitmask, plain evaluator, CNF."""

from repro.checker.encoder import encode, encode_skeleton
from repro.checker.kernel import IndexedExecution
from repro.compile import compile_model
from repro.core.catalog import PSO, SC, TSO
from repro.core.instructions import Fence, Load, Store
from repro.core.litmus import LitmusTest
from repro.core.model import MemoryModel
from repro.core.parametric import model_space
from repro.core.program import Program, Thread
from repro.generation.named_tests import L_TESTS, TEST_A
from repro.sat.solver import SatSolver

SB = LitmusTest.from_register_outcome(
    "SB",
    Program(
        [
            Thread("T1", [Store("X", 1), Load("r1", "Y")]),
            Thread("T2", [Store("Y", 1), Fence(), Load("r2", "X")]),
        ]
    ),
    {"r1": 0, "r2": 0},
)

SAMPLE_MODELS = [SC, TSO, PSO, MemoryModel("neg", "!Fence(x) & !Fence(y)")]
SAMPLE_TESTS = [TEST_A, SB] + list(L_TESTS)


def po_pairs(execution):
    for thread_events in execution.events_by_thread:
        for i, earlier in enumerate(thread_events):
            for later in thread_events[i + 1 :]:
                yield earlier, later


# ----------------------------------------------------------------------
# bitmask lowering
# ----------------------------------------------------------------------
def test_mask_lowering_matches_per_pair_evaluation():
    for test in SAMPLE_TESTS:
        execution = test.execution()
        indexed = IndexedExecution(execution)
        for model in SAMPLE_MODELS:
            mask = compile_model(model).mask_program(indexed)
            for position, (u, v) in enumerate(indexed.po_pairs):
                expected = model.ordered(
                    execution, indexed.events[u], indexed.events[v]
                )
                assert bool((mask >> position) & 1) == expected, (
                    test.name,
                    model.name,
                    position,
                )


def test_mask_lowering_shares_node_masks_across_models():
    indexed = IndexedExecution(TEST_A.execution())
    shared_a = MemoryModel("a", "(Write(x) & Write(y)) | Fence(x) | Fence(y)")
    shared_b = MemoryModel("b", "(Write(x) & Write(y)) | Read(x)")
    compile_model(shared_a).mask_program(indexed)
    filled = len(indexed._node_masks)
    assert filled > 0
    compile_model(shared_b).mask_program(indexed)
    # b's Write&Write conjunct and atoms were already memoized by a; only
    # the Read(x) atom and b's root disjunction are new.
    assert len(indexed._node_masks) == filled + 2


def test_callable_models_are_tabulated_once_per_execution():
    calls = []

    def ordered(execution, x, y):
        calls.append((x, y))
        return x.is_write

    model = MemoryModel("tab", ordered)
    indexed = IndexedExecution(TEST_A.execution())
    compiled = compile_model(model)
    first = compiled.mask_program(indexed)
    tabulated = len(calls)
    assert tabulated == len(indexed.po_pairs)
    # A second evaluation over the same execution answers from the memo.
    assert compiled.mask_program(indexed) == first
    assert len(calls) == tabulated


# ----------------------------------------------------------------------
# plain-evaluator lowering
# ----------------------------------------------------------------------
def test_evaluator_lowering_matches_formula_evaluate():
    for test in SAMPLE_TESTS:
        execution = test.execution()
        for model in SAMPLE_MODELS:
            evaluator = compile_model(model).evaluator
            for x, y in po_pairs(execution):
                assert evaluator(execution, x, y) == model.ordered(execution, x, y)


def test_evaluator_lowering_handles_swapped_and_repeated_args():
    model = MemoryModel("swapped", "SameAddr(y, x) | DataDep(x, x)")
    execution = TEST_A.execution()
    evaluator = compile_model(model).evaluator
    for x, y in po_pairs(execution):
        assert evaluator(execution, x, y) == model.ordered(execution, x, y)


# ----------------------------------------------------------------------
# CNF lowering
# ----------------------------------------------------------------------
def test_skeleton_assumptions_from_mask_match_per_pair_assumptions():
    for test in SAMPLE_TESTS:
        execution = test.execution()
        skeleton = encode_skeleton(execution)
        indexed = IndexedExecution(execution)
        for model in SAMPLE_MODELS:
            compiled = compile_model(model)
            per_pair = skeleton.po_assumptions(model)
            from_mask = skeleton.po_assumptions_from_mask(
                compiled.mask_program(indexed)
            )
            assert per_pair == from_mask, (test.name, model.name)


def test_one_shot_encoding_agrees_with_skeleton_instantiation():
    for model in (SC, TSO, PSO):
        for test in (TEST_A, SB):
            execution = test.execution()
            one_shot = SatSolver(encode(execution, model).cnf).solve().satisfiable
            skeleton = encode_skeleton(execution)
            instantiated = (
                SatSolver(skeleton.cnf)
                .solve(skeleton.po_assumptions(model))
                .satisfiable
            )
            assert one_shot == instantiated, (test.name, model.name)


def test_mask_sharing_between_explicit_and_sat_strategies():
    """One engine answering both backends computes each model's po mask once."""
    from repro.engine.engine import CheckEngine

    explicit = CheckEngine("explicit")
    sat = CheckEngine("sat")
    models = model_space(include_data_dependencies=False)
    expected = [explicit.check(TEST_A, model) for model in models]
    assert [sat.check(TEST_A, model) for model in models] == expected
    # The SAT engine answered entirely through po_mask: repeat checks hit.
    before = sat.stats.po_edge_cache_hits
    [sat.check(TEST_A, model) for model in models]
    assert sat.stats.po_edge_cache_hits == before + len(models)
