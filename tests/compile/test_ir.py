"""Unit tests for the ModelIR (:mod:`repro.compile.ir`) and the compiler."""

import pytest

from repro.compile import CompiledModel, compile_model, from_formula
from repro.compile.ir import describe
from repro.core.formula import FormulaError, parse_formula
from repro.core.model import MemoryModel
from repro.core.parametric import model_space


def build(text):
    """Compile a DSL formula against the default registry."""
    model = MemoryModel("t", text)
    return from_formula(model.formula, model.registry)


# ----------------------------------------------------------------------
# hash-consing and cross-model CSE
# ----------------------------------------------------------------------
def test_structurally_equal_formulas_intern_to_the_same_node():
    first = build("(Write(x) & Write(y)) | Fence(x)")
    second = build("(Write(x) & Write(y)) | Fence(x)")
    assert first is second
    assert first.digest == second.digest


def test_commutativity_and_idempotence_are_normalized_away():
    assert build("Write(x) & Read(y)") is build("Read(y) & Write(x)")
    assert build("Fence(x) | Fence(y)") is build("Fence(y) | Fence(x)")
    assert build("Fence(x) & Fence(x)") is build("Fence(x)")
    # Nested same-kind connectives flatten.
    assert build("(Fence(x) | Fence(y)) | Read(x)") is build(
        "Fence(x) | (Fence(y) | Read(x))"
    )


def test_subformulas_are_shared_across_models():
    first = build("(Write(x) & Write(y)) | Fence(x) | Fence(y)")
    second = build("(Write(x) & Write(y)) | Read(x)")
    shared = {node.node_id for node in first.walk()} & {
        node.node_id for node in second.walk()
    }
    # The Write(x) & Write(y) conjunct (and its atoms) is one shared DAG.
    conjunct = build("Write(x) & Write(y)")
    assert conjunct.node_id in shared


def test_model_space_compiles_to_a_small_shared_dag():
    models = model_space(include_data_dependencies=True)
    compiled = [compile_model(model) for model in models]
    all_nodes = set()
    for entry in compiled:
        all_nodes |= entry.node_ids
    # 90 models share far fewer distinct subformulas than 90 disjoint trees.
    assert len(all_nodes) < 150
    assert all(entry.kind == "formula" for entry in compiled)


# ----------------------------------------------------------------------
# NNF normalization and simplification
# ----------------------------------------------------------------------
def test_negation_is_pushed_to_atoms():
    root = build("!(Write(x) & Read(y))")
    assert root.kind == "or"
    assert {child.kind for child in root.children} == {"natom"}
    assert root.is_positive() is False
    assert build("Write(x)").is_positive() is True


def test_double_negation_cancels():
    assert build("!!Write(x)") is build("Write(x)")
    assert build("!!!Write(x)") is build("!Write(x)")


def test_constants_fold():
    assert build("Write(x) & False").kind == "false"
    assert build("Write(x) & True") is build("Write(x)")
    assert build("Write(x) | True").kind == "true"
    assert build("Write(x) | False") is build("Write(x)")
    assert build("!True").kind == "false"
    assert build("!False").kind == "true"


def test_complementary_literals_fold():
    assert build("Write(x) & !Write(x)").kind == "false"
    assert build("Write(x) | !Write(x)").kind == "true"
    # ... but only for the same argument tuple.
    assert build("Write(x) & !Write(y)").kind == "and"


def test_describe_renders_the_dag():
    assert describe(build("Write(x) & Read(y)")) in (
        "(Write(x) & Read(y))",
        "(Read(y) & Write(x))",
    )


# ----------------------------------------------------------------------
# digests: semantic identity
# ----------------------------------------------------------------------
def test_digest_survives_model_reregistration():
    text = "(Write(x) & Write(y)) | Read(x) | Fence(x) | Fence(y)"
    first = compile_model(MemoryModel("TSO", text))
    second = compile_model(MemoryModel("renamed-later", text))
    assert first.digest == second.digest
    assert first.root is second.root


def test_digest_is_stable_across_processes():
    # Pins the canonical digest of a known formula: a change here means every
    # persisted digest-keyed artifact silently misses.  Update consciously.
    root = build("(Write(x) & Write(y)) | Read(x) | Fence(x) | Fence(y)")
    assert root.digest == (
        "6b92cfc1870a166c1bff55c48a4a026375395c620a0070a9fb000759e5022fb1"
    )


def test_distinct_formulas_have_distinct_digests():
    digests = {
        compile_model(model).digest
        for model in model_space(include_data_dependencies=True)
    }
    assert len(digests) == 90


# ----------------------------------------------------------------------
# vocabulary extraction and opaque models
# ----------------------------------------------------------------------
def test_vocabulary_extraction():
    compiled = compile_model(
        MemoryModel("t", "(Write(x) & Write(y) & SameAddr(x, y)) | Fence(y)")
    )
    assert compiled.vocabulary == ("Fence", "SameAddr", "Write")


def test_callable_models_compile_to_opaque_call_nodes():
    def ordered(execution, x, y):
        return True

    compiled = compile_model(MemoryModel("opaque", ordered))
    assert compiled.kind == "callable"
    assert compiled.root.kind == "call"
    # Vocabulary falls back to the model's declared predicate set.
    assert "Read" in compiled.vocabulary


def test_user_formula_subclasses_compile_to_opaque_call_nodes():
    from repro.core.formula import Formula

    class Always(Formula):
        def evaluate(self, execution, x, y, registry=None):
            return True

        def atoms(self):
            return ()

        def is_positive(self):
            return True

    compiled = compile_model(MemoryModel("custom", Always()))
    assert compiled.root.kind == "call"


def test_unknown_predicate_raises_formula_error():
    model = MemoryModel("bad", parse_formula("Write(x)"))
    object.__setattr__(model, "must_not_reorder", parse_formula("Write(x)"))
    with pytest.raises(FormulaError, match="unknown predicate"):
        from_formula(parse_formula("Nonsense(x)"), model.registry)


# ----------------------------------------------------------------------
# compile cache
# ----------------------------------------------------------------------
def test_compile_model_is_memoized_per_object():
    model = MemoryModel("memo", "Write(x) | Read(y)")
    assert compile_model(model) is compile_model(model)


def test_compiled_model_repr_and_sizes():
    compiled = compile_model(MemoryModel("t", "Write(x) & Read(y)"))
    assert isinstance(compiled, CompiledModel)
    assert compiled.num_nodes == 3  # the conjunction and its two atoms
    assert "nodes=3" in repr(compiled)


def test_opaque_digests_never_collide_across_cache_clears():
    """Token numbering is monotonic across clear_caches(): a post-clear
    callable must not inherit a pre-clear callable's digest, or digest-keyed
    engine caches would serve one model's masks for the other."""
    import repro.compile as compile_package

    first = compile_model(MemoryModel("a", lambda execution, x, y: True))
    compile_package.clear_caches()
    second = compile_model(MemoryModel("b", lambda execution, x, y: False))
    assert first.digest != second.digest
