"""Hypothesis differential suite: compiled vs. interpreted model evaluation.

Random formulas — including ``Not`` and opaque callable atoms — are compiled
through the IR and cross-checked against the uncompiled interpreters
(``Formula.evaluate`` per pair, ``IndexedExecution._formula_mask`` over
bitmasks), and the three engine backends (explicit / enumeration / SAT) are
required to return identical verdicts for the compiled models on random
litmus tests.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checker.kernel import IndexedExecution
from repro.compile import compile_model
from repro.core.formula import (
    And,
    Atom,
    FalseFormula,
    Not,
    Or,
    TrueFormula,
)
from repro.core.model import MemoryModel
from repro.engine.engine import CheckEngine
from repro.generation.named_tests import L_TESTS, TEST_A

from tests.conftest import small_litmus_tests

# Predicate applications over the paper's vocabulary, with every argument
# shape the DSL allows (unary on x or y; binary over permutations/repeats).
_ATOMS = st.sampled_from(
    [Atom(name, ("x",)) for name in ("Read", "Write", "Fence", "MemAccess")]
    + [Atom(name, ("y",)) for name in ("Read", "Write", "Fence", "MemAccess")]
    + [
        Atom(name, args)
        for name in ("SameAddr", "DataDep", "CtrlDep", "Dep")
        for args in (("x", "y"), ("y", "x"), ("x", "x"), ("y", "y"))
    ]
)

_LEAVES = st.one_of(_ATOMS, st.just(TrueFormula()), st.just(FalseFormula()))


def formulas():
    """Random formula trees with negation, up to a few levels deep."""
    return st.recursive(
        _LEAVES,
        lambda children: st.one_of(
            st.builds(Not, children),
            st.builds(lambda ops: And(ops), st.lists(children, min_size=2, max_size=3)),
            st.builds(lambda ops: Or(ops), st.lists(children, min_size=2, max_size=3)),
        ),
        max_leaves=8,
    )


FIXED_TESTS = [TEST_A, L_TESTS[0], L_TESTS[5]]


@settings(max_examples=60, deadline=None)
@given(formula=formulas())
def test_compiled_masks_match_interpreted_masks(formula):
    model = MemoryModel("random", formula)
    compiled = compile_model(model)
    for test in FIXED_TESTS:
        indexed = IndexedExecution(test.execution())
        assert compiled.mask_program(indexed) == indexed._formula_mask(
            formula, model.registry
        )


@settings(max_examples=60, deadline=None)
@given(formula=formulas())
def test_compiled_evaluator_matches_formula_evaluate(formula):
    model = MemoryModel("random", formula)
    evaluator = compile_model(model).evaluator
    for test in FIXED_TESTS:
        execution = test.execution()
        for thread_events in execution.events_by_thread:
            for i, x in enumerate(thread_events):
                for y in thread_events[i + 1 :]:
                    assert evaluator(execution, x, y) == formula.evaluate(
                        execution, x, y, model.registry
                    )


@settings(max_examples=40, deadline=None)
@given(formula=formulas(), test=small_litmus_tests())
def test_backends_agree_on_random_compiled_models(formula, test):
    model = MemoryModel("random", formula)
    verdicts = {
        backend: CheckEngine(backend).check(test, model)
        for backend in ("explicit", "enumeration", "sat")
    }
    assert len(set(verdicts.values())) == 1, verdicts


@settings(max_examples=40, deadline=None)
@given(formula=formulas(), test=small_litmus_tests())
def test_callable_atoms_match_their_formula(formula, test):
    """A model defined by an opaque callable (compiled to a tabulated call
    node) must verdict exactly like the formula it wraps."""
    registry = MemoryModel("f", formula).registry

    def opaque(execution, x, y, _formula=formula, _registry=registry):
        return _formula.evaluate(execution, x, y, _registry)

    formula_model = MemoryModel("formula", formula)
    callable_model = MemoryModel("callable", opaque)
    assert compile_model(callable_model).kind == "callable"
    for backend in ("explicit", "enumeration", "sat"):
        assert CheckEngine(backend).check(test, callable_model) == CheckEngine(
            backend
        ).check(test, formula_model)
