"""Build hook for the optional C kernel extension.

The library itself is pure Python and runs src-layout style with
``PYTHONPATH=src`` (see README) — this file exists solely to compile
``repro.native._kernelmod``, the word-array native checking kernel.  The
extension is declared *optional*: on a machine without a C toolchain the
build step fails softly and the package falls back to the pure-Python
kernels (see ``repro.native.backend``), so installation never breaks.

Two ways to build:

* ``pip install -e .`` — compiles the extension into the installed tree.
  Note that with ``PYTHONPATH=src`` in the environment the source tree
  shadows the install, so for development prefer:
* ``python setup.py build_ext --inplace`` — drops the ``.so`` next to
  ``src/repro/native/``, where the src-layout import finds it.
"""

from setuptools import Extension, setup

setup(
    ext_modules=[
        Extension(
            "repro.native._kernelmod",
            sources=["src/repro/native/_kernelmod.c"],
            optional=True,
        )
    ]
)
