#!/usr/bin/env python3
"""Reproduce the paper's model-space exploration (Section 4.2, Figure 4).

The script explores the parametric family of memory models through one
:class:`repro.Session` (so the engine's per-test caches are shared by every
request it makes) and prints:

* the equivalence classes (the paper finds eight equivalent pairs in the
  90-model space, all differing only in whether a write may be reordered
  with a later read to the same address);
* the Hasse diagram of the weaker-to-stronger order with the distinguishing
  litmus tests on each edge (Figure 4);
* a verdict table of the nine tests L1..L9 against well-known models.

It also writes ``model_space.dot`` which can be rendered with Graphviz.

Run with::

    python examples/explore_model_space.py            # 36-model space (fast)
    python examples/explore_model_space.py --deps     # full 90-model space
"""

import argparse
import time

from repro import ExploreRequest, Session, find_minimal_distinguishing_set, verify_distinguishing_set
from repro.comparison.report import exploration_report, hasse_dot, verdict_table
from repro.core.parametric import KNOWN_CORRESPONDENCES
from repro.generation.named_tests import L_TESTS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--deps",
        action="store_true",
        help="explore the full 90-model space (with data dependencies); slower",
    )
    parser.add_argument("--dot", default="model_space.dot", help="output DOT file")
    args = parser.parse_args()

    session = Session()
    space = "deps" if args.deps else "no_deps"
    models = session.models.space(space)
    suite = session.tests.suite("standard" if args.deps else "no_deps")
    print("Enumerating the model space and generating the template suite ...")
    print(f"  {len(models)} models, {len(suite)} feasible template tests\n")

    started = time.perf_counter()
    result = session.run(ExploreRequest(space=space))
    elapsed = time.perf_counter() - started

    print(exploration_report(result, KNOWN_CORRESPONDENCES))
    print()
    print(f"Exploration time: {elapsed:.1f}s ({result.checks_performed} admissibility checks)")
    print(f"Equivalent pairs found: {result.num_equivalent_pairs()}")
    print()

    # Headline facts of Section 4.2: SC (M4444) is the unique strongest
    # model, and the full 90-model space contains exactly 8 equivalent pairs.
    assert result.strongest_models() == ["M4444"]
    if args.deps:
        assert result.num_equivalent_pairs() == 8

    # The paper's headline claim: nine tests are enough for the whole space.
    sufficiency = verify_distinguishing_set(models, L_TESTS, suite, checker=session.engine)
    print(
        f"L1..L9 distinguish {sufficiency.covered_pairs}/{sufficiency.total_pairs} "
        f"non-equivalent pairs (complete: {sufficiency.complete})"
    )
    assert sufficiency.complete, "L1..L9 must distinguish every non-equivalent pair"
    greedy = find_minimal_distinguishing_set(
        models, suite, checker=session.engine, seed_tests=L_TESTS
    )
    print(f"A greedy minimal distinguishing set has {len(greedy.test_names)} tests:")
    for name in greedy.test_names:
        print(f"  {name}")
    print()

    # Verdict table for the well-known models of Figure 4's annotations.
    known_result = session.run(
        ExploreRequest(models=("M4444", "M4144", "M4044", "M1044", "M1010"), suite=None)
    )
    print("Verdicts of the nine tests against the well-known models")
    print("  (A = allowed, . = forbidden)\n")
    print(verdict_table(known_result, [test.name for test in L_TESTS]))
    print()

    with open(args.dot, "w") as handle:
        handle.write(hasse_dot(result, KNOWN_CORRESPONDENCES))
    print(f"Wrote the Figure 4 graph to {args.dot} (render with: dot -Tpdf {args.dot})")


if __name__ == "__main__":
    main()
