#!/usr/bin/env python3
"""Quickstart: define litmus tests, check them against memory models.

This example reproduces the motivating example of the paper (Figure 1's
Test A) and the classic store-buffering test through the public API: one
:class:`repro.Session` answers every request, so engine caches persist
between calls.  It shows the three things most users need:

1. building a litmus test from instructions (or loading one from text);
2. asking whether a model allows its outcome (with a happens-before witness);
3. enumerating every outcome a program can produce under a model.

Run with::

    python examples/quickstart.py
"""

from repro import (
    CheckRequest,
    LitmusTest,
    Load,
    OutcomesRequest,
    Program,
    Session,
    Store,
    TEST_A,
    Thread,
)


def check_test_a(session: Session) -> None:
    """Figure 1: Test A is allowed under TSO but forbidden under SC."""
    print(TEST_A.pretty())
    print()

    for model in ("TSO", "SC"):
        result = session.run(CheckRequest(test="A", model=model, witness=True))
        print(result.describe())
        if result.allowed:
            print("  witnessing happens-before choice:")
            print("\n".join("  " + line for line in result.witness.describe().splitlines()))
        print()
    assert session.run(CheckRequest(test="A", model="TSO")).allowed
    assert not session.run(CheckRequest(test="A", model="SC")).allowed


def build_store_buffering() -> LitmusTest:
    """The store-buffering (SB) test, written with the instruction API."""
    program = Program(
        [
            Thread("T1", [Store("X", 1), Load("r1", "Y")]),
            Thread("T2", [Store("Y", 1), Load("r2", "X")]),
        ]
    )
    return LitmusTest.from_register_outcome(
        "SB", program, {"r1": 0, "r2": 0}, description="both reads miss the other thread's store"
    )


def check_store_buffering(session: Session) -> None:
    test = build_store_buffering()
    print(test.pretty())
    print()

    sat_session = Session(backend="sat")
    for model in ("SC", "TSO"):
        via_explicit = session.run(CheckRequest(test=test, model=model)).allowed
        via_sat = sat_session.run(CheckRequest(test=test, model=model)).allowed
        assert via_explicit == via_sat, "the two backends always agree"
        verdict = "allowed" if via_explicit else "forbidden"
        print(f"  {model:4s}: {verdict} (explicit and SAT backends agree)")
    assert not session.run(CheckRequest(test=test, model="SC")).allowed
    assert session.run(CheckRequest(test=test, model="TSO")).allowed
    print()


def enumerate_outcomes(session: Session) -> None:
    """What can SB produce under SC vs TSO?  TSO adds exactly one outcome."""
    test = build_store_buffering()
    counts = {}
    for model in ("SC", "TSO"):
        outcome_set = session.run(OutcomesRequest(test=test, model=model))
        counts[model] = len(outcome_set)
        rendered = ", ".join(
            "{" + "; ".join(f"{r}={v}" for r, v in sorted(outcome.items())) + "}"
            for outcome in outcome_set
        )
        print(f"  {model:4s} allows {len(outcome_set)} outcomes: {rendered}")
    assert counts == {"SC": 3, "TSO": 4}, "TSO adds exactly the r1=0 & r2=0 outcome"
    print()


def main() -> None:
    session = Session()

    print("=" * 70)
    print("1. Test A (Figure 1): store forwarding under TSO")
    print("=" * 70)
    check_test_a(session)

    print("=" * 70)
    print("2. Store buffering, built from the instruction API")
    print("=" * 70)
    check_store_buffering(session)

    print("=" * 70)
    print("3. All outcomes of store buffering under SC and TSO")
    print("=" * 70)
    enumerate_outcomes(session)

    print(f"(one session, engine counters: {session.stats.describe()})")


if __name__ == "__main__":
    main()
