#!/usr/bin/env python3
"""Quickstart: define litmus tests, check them against memory models.

This example reproduces the motivating example of the paper (Figure 1's
Test A) and the classic store-buffering test, and shows the three things most
users need:

1. building a litmus test from instructions (or loading one from text);
2. asking whether a model allows its outcome (with a happens-before witness);
3. enumerating every outcome a program can produce under a model.

Run with::

    python examples/quickstart.py
"""

from repro import (
    SC,
    TSO,
    TEST_A,
    ExplicitChecker,
    Fence,
    LitmusTest,
    Load,
    Program,
    SatChecker,
    Store,
    Thread,
    allowed_outcomes,
)


def check_test_a() -> None:
    """Figure 1: Test A is allowed under TSO but forbidden under SC."""
    print(TEST_A.pretty())
    print()

    checker = ExplicitChecker()
    for model in (TSO, SC):
        result = checker.check(TEST_A, model)
        print(result.describe())
        if result.allowed:
            print("  witnessing happens-before choice:")
            print("\n".join("  " + line for line in result.witness.describe().splitlines()))
        print()


def build_store_buffering() -> LitmusTest:
    """The store-buffering (SB) test, written with the instruction API."""
    program = Program(
        [
            Thread("T1", [Store("X", 1), Load("r1", "Y")]),
            Thread("T2", [Store("Y", 1), Load("r2", "X")]),
        ]
    )
    return LitmusTest.from_register_outcome(
        "SB", program, {"r1": 0, "r2": 0}, description="both reads miss the other thread's store"
    )


def check_store_buffering() -> None:
    test = build_store_buffering()
    print(test.pretty())
    print()

    explicit = ExplicitChecker()
    sat = SatChecker()
    for model in (SC, TSO):
        via_explicit = explicit.check(test, model).allowed
        via_sat = sat.check(test, model).allowed
        assert via_explicit == via_sat, "the two backends always agree"
        verdict = "allowed" if via_explicit else "forbidden"
        print(f"  {model.name:4s}: {verdict} (explicit and SAT backends agree)")
    print()


def enumerate_outcomes() -> None:
    """What can SB produce under SC vs TSO?  TSO adds exactly one outcome."""
    test = build_store_buffering()
    for model in (SC, TSO):
        outcomes = allowed_outcomes(test.program, model)
        rendered = ", ".join(
            "{" + "; ".join(f"{r}={v}" for r, v in sorted(outcome.items())) + "}"
            for outcome in outcomes
        )
        print(f"  {model.name:4s} allows {len(outcomes)} outcomes: {rendered}")
    print()


def main() -> None:
    print("=" * 70)
    print("1. Test A (Figure 1): store forwarding under TSO")
    print("=" * 70)
    check_test_a()

    print("=" * 70)
    print("2. Store buffering, built from the instruction API")
    print("=" * 70)
    check_store_buffering()

    print("=" * 70)
    print("3. All outcomes of store buffering under SC and TSO")
    print("=" * 70)
    enumerate_outcomes()


if __name__ == "__main__":
    main()
