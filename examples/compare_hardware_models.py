#!/usr/bin/env python3
"""Compare hardware memory models with bounded litmus tests.

This example reproduces the paper's core use case: given two memory-model
specifications, decide whether they are equivalent, and if not produce the
contrasting litmus tests.  It compares the catalogued hardware models
(SC, TSO/x86, PSO, IBM 370, Alpha) pairwise using the generated template
suite plus the paper's nine tests, and prints a relation matrix.

Run with::

    python examples/compare_hardware_models.py
"""

from repro import IBM370, PSO, SC, TSO, X86, ALPHA, ModelComparator, Relation
from repro.core.catalog import RMO_DATA_DEP_ONLY
from repro.generation.named_tests import L_TESTS
from repro.generation.suite import standard_suite
from repro.io.writer import litmus_to_text

MODELS = [SC, IBM370, TSO, X86, PSO, RMO_DATA_DEP_ONLY, ALPHA]

RELATION_SYMBOLS = {
    Relation.EQUIVALENT: "==",
    Relation.STRONGER: "<<",  # row allows fewer executions than column
    Relation.WEAKER: ">>",
    Relation.INCOMPARABLE: "><",
}


def main() -> None:
    print("Generating the 230-instantiation template suite ...")
    suite = standard_suite()
    tests = suite.tests() + list(L_TESTS)
    comparator = ModelComparator(tests)
    print(
        f"  {suite.num_feasible()} feasible template tests "
        f"(+{len(L_TESTS)} named tests) over {len(MODELS)} models\n"
    )

    # ------------------------------------------------------------------
    # relation matrix
    # ------------------------------------------------------------------
    names = [model.name for model in MODELS]
    width = max(len(name) for name in names) + 2
    header = " " * width + "".join(f"{name:>{width}}" for name in names)
    print(header)
    for row_model in MODELS:
        cells = []
        for column_model in MODELS:
            if row_model.name == column_model.name:
                cells.append(f"{'--':>{width}}")
                continue
            relation = comparator.compare(row_model, column_model).relation
            cells.append(f"{RELATION_SYMBOLS[relation]:>{width}}")
        print(f"{row_model.name:<{width}}" + "".join(cells))
    print("\n  '<<' row is stronger (allows fewer executions), '>>' row is weaker,")
    print("  '==' equivalent, '><' incomparable\n")

    # ------------------------------------------------------------------
    # contrasting tests for a few interesting pairs
    # ------------------------------------------------------------------
    for first, second in [(TSO, X86), (TSO, IBM370), (PSO, TSO), (ALPHA, RMO_DATA_DEP_ONLY)]:
        result = comparator.compare(first, second)
        print(result.describe())
        if not result.equivalent:
            witness_name = (result.only_first or result.only_second)[0]
            witness = next(test for test in tests if test.name == witness_name)
            print("  one contrasting test, in litmus text format:\n")
            print("\n".join("    " + line for line in litmus_to_text(witness).splitlines()))
        print()

    print(f"(performed {comparator.checks_performed} admissibility checks)")


if __name__ == "__main__":
    main()
