#!/usr/bin/env python3
"""Compare hardware memory models with bounded litmus tests.

This example reproduces the paper's core use case through the public API:
given two memory-model specifications, decide whether they are equivalent,
and if not produce the contrasting litmus tests.  One
:class:`repro.Session` answers every pairwise :class:`repro.CompareRequest`
over the generated template suite plus the paper's nine tests, so each
model's verdict vector is computed exactly once for the whole matrix.

Run with::

    python examples/compare_hardware_models.py
"""

from repro import CompareRequest, Relation, Session
from repro.io.writer import litmus_to_text

MODELS = ["SC", "IBM370", "TSO", "x86", "PSO", "RMO-data", "Alpha"]

RELATION_SYMBOLS = {
    Relation.EQUIVALENT: "==",
    Relation.STRONGER: "<<",  # row allows fewer executions than column
    Relation.WEAKER: ">>",
    Relation.INCOMPARABLE: "><",
}


def main() -> None:
    print("Generating the 230-instantiation template suite ...")
    session = Session()
    tests = session.tests.comparison_tests("standard")
    print(f"  {len(tests)} comparison tests over {len(MODELS)} models\n")

    # ------------------------------------------------------------------
    # relation matrix
    # ------------------------------------------------------------------
    width = max(len(name) for name in MODELS) + 2
    header = " " * width + "".join(f"{name:>{width}}" for name in MODELS)
    print(header)
    relations = {}
    for row in MODELS:
        cells = []
        for column in MODELS:
            if row == column:
                cells.append(f"{'--':>{width}}")
                continue
            relation = session.run(CompareRequest(first=row, second=column)).relation
            relations[(row, column)] = relation
            cells.append(f"{RELATION_SYMBOLS[relation]:>{width}}")
        print(f"{row:<{width}}" + "".join(cells))
    print("\n  '<<' row is stronger (allows fewer executions), '>>' row is weaker,")
    print("  '==' equivalent, '><' incomparable\n")

    # the paper's headline relations
    assert relations[("TSO", "x86")] is Relation.EQUIVALENT
    assert relations[("SC", "TSO")] is Relation.STRONGER
    assert relations[("PSO", "TSO")] is Relation.WEAKER

    # ------------------------------------------------------------------
    # contrasting tests for a few interesting pairs
    # ------------------------------------------------------------------
    for first, second in [("TSO", "x86"), ("TSO", "IBM370"), ("PSO", "TSO"), ("Alpha", "RMO-data")]:
        result = session.run(CompareRequest(first=first, second=second))
        print(result.describe())
        if not result.equivalent:
            witness_name = (result.only_first or result.only_second)[0]
            witness = next(test for test in tests if test.name == witness_name)
            print("  one contrasting test, in litmus text format:\n")
            print("\n".join("    " + line for line in litmus_to_text(witness).splitlines()))
        print()

    print(f"(performed {session.stats.checks_performed} admissibility checks)")


if __name__ == "__main__":
    main()
