#!/usr/bin/env python3
"""Define a custom memory model and locate it in the model space.

This example shows the extension surface of the public API:

1. a custom must-not-reorder function written in the formula DSL (a
   hypothetical "TSO plus relaxed same-address read-read" model),
   registered in the session's :class:`repro.ModelRegistry`;
2. a custom model that uses *control dependencies* — the paper's framework
   supports them even though its tool did not implement them;
3. placing both models in the paper's lattice by comparing them against the
   named hardware models and the parametric space;
4. generating the contrasting litmus tests that separate the custom model
   from its nearest neighbours and writing them out as .litmus files.

Run with::

    python examples/custom_model.py
"""

from pathlib import Path

from repro import CompareRequest, MemoryModel, Relation, Session
from repro.core.predicates import EXTENDED_PREDICATES
from repro.io.writer import write_litmus_file


def define_models():
    """Two custom models expressed with the formula DSL."""
    # TSO, except that independent reads of the *same* address may also be
    # reordered (a deliberately odd design to show where it lands).
    tso_relaxed_corr = MemoryModel(
        "TSO-coRR",
        "(Write(x) & Write(y)) | (Read(x) & Read(y) & SameAddr(x, y)) "
        "| (Read(x) & Write(y)) | Fence(x) | Fence(y)",
        description="TSO with relaxed same-address read-read ordering ... almost: "
        "reads still order later writes and same-address reads.",
    )

    # An RMO-like model that relies on *control* dependencies only.
    ctrl_dep_only = MemoryModel(
        "CtrlDepOnly",
        "(Write(y) & SameAddr(x, y)) | Fence(x) | Fence(y) | CtrlDep(x, y)",
        EXTENDED_PREDICATES,
        description="orders accesses only across fences, control dependencies and "
        "same-address writes (data dependencies are ignored, as on Alpha).",
    )
    return tso_relaxed_corr, ctrl_dep_only


def locate(session, model_name, references, suite):
    model = session.models.resolve(model_name)
    print(f"Model {model.name}: F(x, y) = {model.formula}")
    for reference in references:
        result = session.run(CompareRequest(first=model_name, second=reference, suite=suite))
        print(f"  vs {reference:8s}: {result.relation.value:12s} "
              f"(witnesses: {', '.join(result.witnesses()[:4]) or '-'})")
    print()


def main() -> None:
    session = Session()
    tso_relaxed_corr, ctrl_dep_only = define_models()
    session.models.register(tso_relaxed_corr)
    session.models.register(ctrl_dep_only)

    print("Generating template suites ...\n")

    print("=" * 70)
    print("1. Where does 'TSO with relaxed same-address read-read' sit?")
    print("=" * 70)
    locate(session, "TSO-coRR", ["SC", "IBM370", "TSO", "PSO", "Alpha"], suite="standard")

    # Is it equivalent to any model of the paper's 90-model space?
    equivalents = [
        parametric.name
        for parametric in session.models.space("deps")
        if session.run(
            CompareRequest(first="TSO-coRR", second=parametric, suite="standard")
        ).equivalent
    ]
    print(f"Equivalent parametric models: {equivalents or 'none'}\n")

    print("=" * 70)
    print("2. A control-dependency-only model (extension beyond the paper's tool)")
    print("=" * 70)
    # Control dependencies need segments with branches, so compare over the
    # suite generated from the extended predicate set.
    locate(session, "CtrlDepOnly", ["Alpha", "TSO", "SC"], suite="extended")

    contrast = session.run(CompareRequest(first="CtrlDepOnly", second="Alpha", suite="extended"))
    assert contrast.relation is Relation.STRONGER, (
        "ordering control dependencies makes the model strictly stronger than Alpha"
    )

    print("=" * 70)
    print("3. Exporting the contrasting tests")
    print("=" * 70)
    output_directory = Path("custom_model_tests")
    output_directory.mkdir(exist_ok=True)
    extended_tests = session.tests.comparison_tests("extended")
    exported = 0
    for test in extended_tests:
        if test.name in contrast.witnesses()[:5]:
            safe_name = test.name.replace("(", "_").replace(")", "").replace("[", "").replace("]", "").replace(",", "-").replace("+", "_")
            path = output_directory / f"{safe_name}.litmus"
            write_litmus_file(test, path)
            exported += 1
            print(f"  wrote {path}")
    print(f"\nExported {exported} contrasting tests to {output_directory}/")


if __name__ == "__main__":
    main()
