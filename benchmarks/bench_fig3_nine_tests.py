"""Experiment E3 (Figure 3): the nine contrasting litmus tests L1..L9.

Checks (and times) that the nine tests are sufficient to distinguish every
pair of non-equivalent models, first in the dependency-free 36-model space
and then that they remain necessary: removing any one of the dependent tests
breaks coverage of the full 90-model space.
"""

import pytest

from repro.comparison.minimal_tests import (
    find_minimal_distinguishing_set,
    verify_distinguishing_set,
)
from repro.generation.named_tests import L_TESTS


@pytest.mark.benchmark(group="fig3-nine-tests")
def test_fig3_l_tests_distinguish_36_model_space(
    benchmark, models_36, suite_without_dependencies
):
    result = benchmark.pedantic(
        lambda: verify_distinguishing_set(
            models_36, L_TESTS, suite_without_dependencies.tests()
        ),
        rounds=1,
        iterations=1,
    )
    assert result.complete
    assert result.total_pairs == 624  # 30 equivalence classes -> C(36,2) - 6 equivalent pairs


@pytest.mark.benchmark(group="fig3-nine-tests")
def test_fig3_l_tests_distinguish_90_model_space(
    benchmark, models_90, suite_with_dependencies
):
    result = benchmark.pedantic(
        lambda: verify_distinguishing_set(
            models_90, L_TESTS, suite_with_dependencies.tests()
        ),
        rounds=1,
        iterations=1,
    )
    assert result.complete
    assert result.total_pairs == 90 * 89 // 2 - 8  # all pairs except the 8 equivalent ones


@pytest.mark.benchmark(group="fig3-nine-tests")
def test_fig3_greedy_cover_needs_all_nine_for_90_models(benchmark, models_90):
    result = benchmark.pedantic(
        lambda: find_minimal_distinguishing_set(models_90, L_TESTS), rounds=1, iterations=1
    )
    assert result.complete
    assert sorted(result.test_names) == [f"L{i}" for i in range(1, 10)]


@pytest.mark.benchmark(group="fig3-nine-tests")
def test_fig3_greedy_cover_from_generated_suite_is_nine_tests(
    benchmark, models_90, suite_with_dependencies
):
    """A minimal cover drawn from the generated 230-test suite also has size 9."""
    result = benchmark.pedantic(
        lambda: find_minimal_distinguishing_set(models_90, suite_with_dependencies.tests()),
        rounds=1,
        iterations=1,
    )
    assert result.complete
    assert len(result.test_names) == 9
