"""Experiment E2 (Figure 2): the seven templates and their instantiation.

Measures segment enumeration and full template-suite generation, and checks
the per-case instantiation counts implied by the proof of Theorem 1.
"""

import pytest

from repro.core.predicates import NO_DEP_PREDICATES, STANDARD_PREDICATES
from repro.generation.counting import per_case_counts, segment_counts
from repro.generation.segments import SegmentKind, enumerate_all_segments
from repro.generation.suite import generate_suite
from repro.generation.templates import TemplateCase


@pytest.mark.benchmark(group="fig2-templates")
def test_fig2_segment_enumeration(benchmark):
    segments = benchmark(lambda: enumerate_all_segments(STANDARD_PREDICATES))
    assert len(segments[SegmentKind.RW]) == 6
    assert len(segments[SegmentKind.WW]) == 4


@pytest.mark.benchmark(group="fig2-templates")
def test_fig2_generate_standard_suite(benchmark):
    suite = benchmark.pedantic(
        lambda: generate_suite(STANDARD_PREDICATES), rounds=3, iterations=1
    )
    assert suite.num_instantiations() == 230
    assert set(suite.per_case()) == {case.value for case in TemplateCase}


@pytest.mark.benchmark(group="fig2-templates")
def test_fig2_generate_dependency_free_suite(benchmark):
    suite = benchmark.pedantic(
        lambda: generate_suite(NO_DEP_PREDICATES), rounds=3, iterations=1
    )
    assert suite.num_instantiations() == 124


def test_fig2_per_case_counts_match_proof_structure():
    """Cases 1/2/4 scale with one segment count; 3a/3b/5a/5b with products."""
    counts = segment_counts(STANDARD_PREDICATES)
    cases = per_case_counts(counts)
    assert cases == {
        "1": 6,
        "2": 4,
        "3a": 24,
        "3b": 144,
        "4": 4,
        "5a": 24,
        "5b": 24,
    }
