"""Concurrent serve throughput: worker pool + cache hierarchy vs serialized.

The acceptance experiment for the concurrent server rebuild: 8 TCP
clients each pipeline a repeat-query check mix over one connection
against (a) a *serialized* server — one worker, verdict cache off, every
request through the dispatch queue, the pre-rebuild serving shape — and
(b) the concurrent server with 4 workers and a warm verdict cache, where
repeated checks are answered on the connection thread from the
response-line memo over the cache-hit fast path.

Clients count raw newlines inside the timed window and parse/verify the
responses afterwards, so the measurement is server throughput rather
than client-side JSON decoding.  The perf gate records both legs;
``test_concurrent_warm_is_4x_serialized`` pins the headline claim (>=4x
throughput, observed ~5.5x on one core) and asserts the two legs'
responses are bit-identical to a cold single-threaded session, so the
speedup can never come at the cost of a wrong verdict.
"""

import json
import socket
import threading
import time

import pytest

from repro.api.serve import ServeConfig, ServerState, serve_socket
from repro.api.session import Session
from repro.cache import VerdictCache

#: The repeat-query mix: every cacheable named test x the catalog models
#: the paper compares, replayed 8 times by each of the 8 clients.
TESTS = ("A", "L1", "L2", "L3", "L5", "L7")
MODELS = ("SC", "TSO", "PSO", "RMO", "Alpha")
PAIRS = tuple((test, model) for test in TESTS for model in MODELS)
LINES = tuple(
    json.dumps({"op": "check", "test": test, "model": model}) for test, model in PAIRS
)
N_CLIENTS = 8
REPEATS = 8


class _LoadHarness:
    """A serve transport plus 8 persistent pipelining client connections.

    Setup (server start, connection establishment) happens in the
    constructor and teardown in :meth:`close`, so :meth:`run` times only
    the request/response traffic.
    """

    def __init__(self, session, config):
        self.state = ServerState(config)
        self.server = serve_socket(
            session, "127.0.0.1", 0, config=config, state=self.state
        )
        port = self.server.server_address[1]
        self.thread = threading.Thread(
            target=lambda: self.server.serve_forever(poll_interval=0.02), daemon=True
        )
        self.thread.start()
        self.payload = ("\n".join(LINES * REPEATS) + "\n").encode("utf-8")
        self.expected_lines = len(LINES) * REPEATS
        self.connections = [
            socket.create_connection(("127.0.0.1", port), timeout=120)
            for _ in range(N_CLIENTS)
        ]

    def run(self):
        """One load round: every client ships its batch, drains responses
        by newline count.  Returns (elapsed_seconds, parsed responses)."""
        raw = [None] * N_CLIENTS

        def client(index):
            connection = self.connections[index]
            connection.sendall(self.payload)
            chunks, newlines = [], 0
            while newlines < self.expected_lines:
                chunk = connection.recv(1 << 16)
                if not chunk:
                    break
                chunks.append(chunk)
                newlines += chunk.count(b"\n")
            raw[index] = b"".join(chunks)

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(N_CLIENTS)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started

        results = [
            [json.loads(line) for line in blob.decode("utf-8").splitlines()]
            for blob in raw
        ]
        assert all(len(result) == self.expected_lines for result in results)
        assert all(response["ok"] for result in results for response in result)
        return elapsed, results

    def close(self):
        for connection in self.connections:
            connection.close()
        self.server.shutdown()
        self.server.server_close()
        self.thread.join(timeout=10)


def _serialized_session_and_config():
    return Session(), ServeConfig(log_enabled=False, workers=1, cache_capacity=0)


def _concurrent_session_and_config():
    session = Session()
    session.engine.verdict_cache = VerdictCache()
    return session, ServeConfig(log_enabled=False, workers=4)


def _requests_per_run():
    return N_CLIENTS * len(LINES) * REPEATS


@pytest.mark.benchmark(group="serve-load")
def test_serve_serialized_baseline(benchmark):
    """One worker, no cache: the pre-rebuild serialized serving shape."""
    harness = _LoadHarness(*_serialized_session_and_config())
    try:
        elapsed = benchmark.pedantic(
            lambda: harness.run()[0], rounds=3, iterations=1
        )
    finally:
        harness.close()
    benchmark.extra_info["requests"] = _requests_per_run()
    benchmark.extra_info["req_per_s"] = round(_requests_per_run() / elapsed)


@pytest.mark.benchmark(group="serve-load")
def test_serve_concurrent_warm_cache(benchmark):
    """Four workers + warm cache: repeats ride the memo/fast path."""
    session, config = _concurrent_session_and_config()
    harness = _LoadHarness(session, config)
    try:
        harness.run()  # warming pass
        elapsed = benchmark.pedantic(
            lambda: harness.run()[0], rounds=3, iterations=1
        )
    finally:
        harness.close()
    benchmark.extra_info["requests"] = _requests_per_run()
    benchmark.extra_info["req_per_s"] = round(_requests_per_run() / elapsed)
    assert session.engine.stats.verdict_cache_hits > 0  # the fast path engaged


def test_concurrent_warm_is_4x_serialized():
    """The headline acceptance claim, asserted: warm concurrent throughput
    is at least 4x the serialized server's on the same mix, and both
    servers' verdicts are bit-identical to a cold single-threaded session."""
    harness = _LoadHarness(*_serialized_session_and_config())
    try:
        serialized_elapsed, serialized = harness.run()
    finally:
        harness.close()

    harness = _LoadHarness(*_concurrent_session_and_config())
    try:
        harness.run()  # warming pass
        warm_elapsed, warm = harness.run()
    finally:
        harness.close()

    from repro.api.requests import CheckRequest

    cold = Session()
    expected = {
        (test, model): cold.run(CheckRequest(test=test, model=model)).allowed
        for test, model in PAIRS
    }
    plan = list(PAIRS) * REPEATS
    for leg in (serialized, warm):
        for client_responses in leg:
            for (test, model), response in zip(plan, client_responses):
                result = response["result"]
                assert result["test_name"] == test
                assert result["model_name"] == model
                assert result["allowed"] == expected[(test, model)]
    for cold_client, warm_client in zip(serialized, warm):
        for cold_response, warm_response in zip(cold_client, warm_client):
            assert cold_response["result"] == warm_response["result"]

    speedup = serialized_elapsed / warm_elapsed
    assert speedup >= 4.0, (
        f"warm concurrent serve is only {speedup:.2f}x the serialized "
        f"baseline ({serialized_elapsed:.3f}s vs {warm_elapsed:.3f}s)"
    )
