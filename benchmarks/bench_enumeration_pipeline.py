"""Throughput of the exhaustive-enumeration verification pipeline.

The pipeline of :mod:`repro.pipeline` is the new hot path opened by this
repository's scale direction: stream the naive bounded enumeration through
the symmetry-reducing canonicalizer, then check every kernel-distinct
survivor against the whole model space on a warm engine.  Three benchmarks
track its stages:

* ``test_canonicalization_throughput`` — raw tests/second through the
  canonicalizer alone (abstract keys, no litmus-test construction for
  duplicates);
* ``test_pipeline_end_to_end_small`` — the full bounded pipeline
  (enumerate, canonicalize, shard, check, fold), recording unique
  tests/second and checks/second in ``extra_info``;
* ``test_column_checking_throughput`` — the per-shard verdict-column hot
  loop (``CheckEngine.check_column`` over the 36-model space).

Every run asserts correctness facts alongside the timing so a regression
in either shows up here.
"""

import pytest

from repro.engine import CheckEngine
from repro.generation.enumeration import enumerate_canonical_naive_tests
from repro.pipeline import CanonicalIndex, PipelineConfig, run_pipeline
from repro.pipeline.run import BOUNDS

BOUND = "small"


@pytest.mark.benchmark(group="enumeration-pipeline")
def test_canonicalization_throughput(benchmark):
    """Raw naive tests/second through the symmetry-reducing canonicalizer."""

    def canonicalize_stream():
        index = CanonicalIndex()
        unique = sum(1 for _ in enumerate_canonical_naive_tests(BOUNDS["medium"], index=index))
        return index.offered, unique

    raw, unique = benchmark.pedantic(canonicalize_stream, rounds=3, iterations=1)
    assert unique < raw
    benchmark.extra_info["raw_tests"] = raw
    benchmark.extra_info["unique_tests"] = unique
    benchmark.extra_info["raw_tests_per_second"] = round(raw / benchmark.stats.stats.median)


@pytest.mark.benchmark(group="enumeration-pipeline")
def test_pipeline_end_to_end_small(benchmark):
    """The full bounded pipeline: enumerate, canonicalize, shard, check, fold."""
    report = benchmark.pedantic(
        lambda: run_pipeline(PipelineConfig(bound=BOUND, space="no_deps")),
        rounds=3,
        iterations=1,
    )
    # The small bound is too coarse to reproduce the full partition, but the
    # counts it does produce are fixed facts of the enumeration.
    assert report.unique_tests == 941
    assert report.checks_performed == report.unique_tests * 36
    median = benchmark.stats.stats.median
    benchmark.extra_info["unique_tests"] = report.unique_tests
    benchmark.extra_info["tests_per_second"] = round(report.unique_tests / median)
    benchmark.extra_info["checks_per_second"] = round(report.checks_performed / median)


@pytest.mark.benchmark(group="enumeration-pipeline")
def test_column_checking_throughput(benchmark, models_36):
    """The per-shard hot loop: one verdict column per unique test."""
    tests = [
        test
        for _key, test in enumerate_canonical_naive_tests(BOUNDS[BOUND], limit=400)
    ]

    def check_columns():
        engine = CheckEngine("explicit")
        return sum(
            sum(1 for allowed in engine.check_column(test, models_36) if allowed)
            for test in tests
        )

    allowed_total = benchmark.pedantic(check_columns, rounds=3, iterations=1)
    assert 0 < allowed_total < len(tests) * len(models_36)
    benchmark.extra_info["columns_per_second"] = round(
        len(tests) / benchmark.stats.stats.median
    )
