"""Model-compilation throughput and warm-vs-cold exploration.

The compile layer (:mod:`repro.compile`) normalizes every model into a
hash-consed ModelIR shared across the whole parametric space.  This module
baselines both halves of that bargain:

* ``test_compile_90_model_space_cold`` — the cost of the compilation itself:
  intern tables cleared, then the full 90-model space normalized, digested
  and interned from scratch (what a fresh worker process pays once).
* ``test_explore_36_with_warm_compile_cache`` — the steady state the engine
  actually runs in: the IR already interned, an exploration paying only
  digest-keyed cache lookups and per-execution mask evaluation.

The cold/warm pair plus the ``extra_info`` counters make compile-layer
regressions visible separately from checker regressions in the CI gate.
"""

import pytest

from repro.compile import clear_caches, compile_model, precompile_models
from repro.compile import ir as compile_ir
from repro.comparison.exploration import explore_models
from repro.engine import CheckEngine


@pytest.mark.benchmark(group="model-compile")
def test_compile_90_model_space_cold(benchmark, models_90):
    def compile_cold():
        clear_caches()
        return [compile_model(model) for model in models_90]

    compiled = benchmark.pedantic(compile_cold, rounds=5, iterations=1)
    assert len(compiled) == 90
    assert len({entry.digest for entry in compiled}) == 90
    distinct_nodes = set()
    for entry in compiled:
        distinct_nodes |= entry.node_ids
    benchmark.extra_info["distinct_ir_nodes"] = len(distinct_nodes)
    benchmark.extra_info["intern_hits"] = compile_ir.stats.intern_hits
    # Cross-model CSE must stay dramatic: 90 models, ~110 shared nodes.
    assert len(distinct_nodes) < 200


@pytest.mark.benchmark(group="model-compile")
def test_explore_36_with_warm_compile_cache(benchmark, models_36, suite_without_dependencies):
    tests = suite_without_dependencies.tests()
    precompile_models(models_36)  # the IR is warm; engines still start cold

    def explore_warm():
        return explore_models(models_36, tests, checker=CheckEngine("explicit"))

    result = benchmark.pedantic(explore_warm, rounds=3, iterations=1)
    assert result.stats.models_compiled == len(models_36)
    benchmark.extra_info["ir_cse_hits"] = result.stats.ir_cse_hits
    benchmark.extra_info["checks"] = result.checks_performed
