"""Adaptive vs brute-force exhaustive verification throughput.

The partition-guided adaptive layer (``pipeline/adaptive.py``) prunes the
exhaustive pipeline with profile dedup, frontier skipping and monotone
verdict derivation; its whole value is wall-clock, so this module races the
two modes over the same bound on the same warm process:

* ``test_brute_pipeline_small`` — the exact brute-force oracle
  (``adaptive=False``), the pre-adaptive hot path;
* ``test_adaptive_pipeline_small`` — the adaptive run, recording the skip
  rate and derived-verdict count in ``extra_info``;
* ``test_profile_throughput`` — the prefilter alone: raw tests/second
  through ``AdaptiveSpace.profile`` (the per-raw-test overhead every skip
  must amortise).

Every run asserts the differential fact that justifies the layer — the
adaptive partition equals the brute one — so an unsound speedup fails here
before it flatters the numbers.
"""

import pytest

from repro.core.parametric import model_space
from repro.pipeline.adaptive import AdaptiveSpace
from repro.pipeline.run import BOUNDS, PipelineConfig, run_pipeline
from repro.generation.enumeration import enumerate_raw_naive_items

BOUND = "small"


@pytest.mark.benchmark(group="partition-adaptive")
def test_brute_pipeline_small(benchmark):
    """The exact oracle: every kernel-distinct test checked, no pruning."""
    report = benchmark.pedantic(
        lambda: run_pipeline(PipelineConfig(bound=BOUND, space="no_deps")),
        rounds=3,
        iterations=1,
    )
    assert report.unique_tests == 941
    assert not report.adaptive
    median = benchmark.stats.stats.median
    benchmark.extra_info["raw_tests_per_second"] = round(report.raw_tests / median)
    benchmark.extra_info["checked_tests"] = report.unique_tests


@pytest.mark.benchmark(group="partition-adaptive")
def test_adaptive_pipeline_small(benchmark):
    """The adaptive run over the same bound, skip rate in extra_info."""
    report = benchmark.pedantic(
        lambda: run_pipeline(
            PipelineConfig(bound=BOUND, space="no_deps", adaptive=True)
        ),
        rounds=3,
        iterations=1,
    )
    brute = run_pipeline(PipelineConfig(bound=BOUND, space="no_deps"))
    assert report.adaptive
    assert report.equivalence_classes == brute.equivalence_classes
    assert report.hasse_edges == brute.hasse_edges
    skipped = report.profile_skips + report.frontier_skips
    assert report.unique_tests + skipped == report.raw_tests
    median = benchmark.stats.stats.median
    benchmark.extra_info["raw_tests_per_second"] = round(report.raw_tests / median)
    benchmark.extra_info["checked_tests"] = report.unique_tests
    benchmark.extra_info["skip_rate"] = round(skipped / report.raw_tests, 4)
    benchmark.extra_info["profile_skips"] = report.profile_skips
    benchmark.extra_info["frontier_skips"] = report.frontier_skips
    benchmark.extra_info["derived_verdicts"] = report.stats.derived_verdicts


@pytest.mark.benchmark(group="partition-adaptive")
def test_profile_throughput(benchmark):
    """Raw tests/second through the prefilter alone (no kernel work)."""
    space = AdaptiveSpace.build(model_space(include_data_dependencies=False))
    raw = [items for _name, items in enumerate_raw_naive_items(BOUNDS[BOUND])]

    def profile_stream():
        return len({space.profile(items) for items in raw})

    profiles = benchmark.pedantic(profile_stream, rounds=3, iterations=1)
    assert 0 < profiles < len(raw)
    benchmark.extra_info["raw_tests"] = len(raw)
    benchmark.extra_info["profiles"] = profiles
    benchmark.extra_info["raw_tests_per_second"] = round(
        len(raw) / benchmark.stats.stats.median
    )
