"""Experiment E4 (Figure 4): exploring the dependency-free 36-model space.

Regenerates the weaker-to-stronger graph of Figure 4: the equivalence
classes (the doubled-up boxes), the Hasse edges labelled with L tests, SC at
the top and the RMO-like M1010 at the bottom.
"""

import pytest

from repro.comparison.exploration import explore_models
from repro.comparison.report import exploration_report, hasse_dot
from repro.core.parametric import KNOWN_CORRESPONDENCES
from repro.generation.named_tests import L_TESTS


@pytest.fixture(scope="module")
def fig4_result(models_36, suite_without_dependencies):
    return explore_models(
        models_36, suite_without_dependencies.tests(), preferred_tests=L_TESTS
    )


@pytest.mark.benchmark(group="fig4-exploration")
def test_fig4_explore_36_models(benchmark, models_36, suite_without_dependencies):
    result = benchmark.pedantic(
        lambda: explore_models(
            models_36, suite_without_dependencies.tests(), preferred_tests=L_TESTS
        ),
        rounds=1,
        iterations=1,
    )
    assert len(result.models) == 36


def test_fig4_equivalent_groups_match_figure(fig4_result):
    """Figure 4 groups these model pairs into shared boxes."""
    pairs = set(fig4_result.equivalent_pairs())
    assert {("M1010", "M1110"), ("M1011", "M1111"), ("M4010", "M4110"), ("M4011", "M4111")} <= pairs
    assert len(pairs) == 6


def test_fig4_extremes_match_figure(fig4_result):
    assert fig4_result.strongest_models() == ["M4444"]  # SC
    assert fig4_result.weakest_models() == ["M1010"]  # RMO without dependencies


def test_fig4_edge_labels_use_the_nine_tests(fig4_result):
    labelled = sum(1 for edge in fig4_result.hasse_edges if edge.preferred_tests)
    assert labelled == len(fig4_result.hasse_edges), (
        "every Hasse edge of the dependency-free space is distinguished by an L test"
    )
    used = {name for edge in fig4_result.hasse_edges for name in edge.preferred_tests}
    # The dependency-sensitive tests L4 and L6 are not needed in this space.
    assert used <= {"L1", "L2", "L3", "L5", "L7", "L8", "L9", "L4", "L6"}
    assert {"L1", "L2", "L3", "L5", "L7"} <= used


def test_fig4_known_hardware_models_sit_where_the_figure_puts_them(fig4_result):
    from repro.comparison.compare import Relation

    # TSO/x86 = M4044, PSO = M1044, IBM370 = M4144, SC = M4444 (figure annotations).
    assert fig4_result.relation("M1044", "M4044") is Relation.WEAKER
    assert fig4_result.relation("M4044", "M4144") is Relation.WEAKER
    assert fig4_result.relation("M4144", "M4444") is Relation.WEAKER


@pytest.mark.benchmark(group="fig4-exploration")
def test_fig4_render_report_and_dot(benchmark, fig4_result):
    report, dot = benchmark(
        lambda: (
            exploration_report(fig4_result, KNOWN_CORRESPONDENCES),
            hasse_dot(fig4_result, KNOWN_CORRESPONDENCES),
        )
    )
    assert "Equivalence classes: 30" in report
    assert "digraph" in dot
