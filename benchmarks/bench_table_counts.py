"""Experiment E5 (Section 3.4): how many litmus tests are needed?

Reproduces the paper's comparison of test-suite sizes:

* naive enumeration within the Theorem 1 bound: ~10^6 tests (we measure a
  configurable naive enumerator and report its exact count);
* the template construction of this paper: 230 instantiations with data
  dependencies, 124 without — several orders of magnitude fewer.
"""

import pytest

from repro.core.predicates import NO_DEP_PREDICATES, STANDARD_PREDICATES
from repro.generation.counting import corollary1_count_for
from repro.generation.enumeration import NaiveEnumerationConfig, count_naive_tests, enumerate_naive_tests


def test_table_template_counts_match_paper():
    assert corollary1_count_for(STANDARD_PREDICATES) == 230
    assert corollary1_count_for(NO_DEP_PREDICATES) == 124


@pytest.mark.benchmark(group="table-counts")
def test_table_corollary1_evaluation(benchmark):
    count = benchmark(lambda: corollary1_count_for(STANDARD_PREDICATES))
    assert count == 230


@pytest.mark.benchmark(group="table-counts")
def test_table_naive_enumeration_is_orders_of_magnitude_larger(benchmark):
    """Count the dependency-free naive space (3 locations keeps the benchmark fast).

    Even this restricted configuration dwarfs the 124-test template suite by
    more than two orders of magnitude; with four locations (the Theorem 1
    bound) the count exceeds a million, matching the paper's estimate.
    """
    config = NaiveEnumerationConfig(max_locations=3)
    count = benchmark.pedantic(lambda: count_naive_tests(config), rounds=1, iterations=1)
    assert count > 100 * 124


@pytest.mark.benchmark(group="table-counts")
def test_table_naive_enumeration_materialisation_rate(benchmark):
    """Time materialising 2000 naive tests (the enumerate-and-check baseline).

    ``raw=True`` keeps this measuring the historical raw stream now that
    the default stream is symmetry-reduced (the reduced stream's rate is
    tracked by ``bench_enumeration_pipeline.py``).
    """
    config = NaiveEnumerationConfig(max_locations=3)

    def materialise():
        return sum(1 for _ in enumerate_naive_tests(config, limit=2000, raw=True))

    count = benchmark.pedantic(materialise, rounds=1, iterations=1)
    assert count == 2000


def test_table_naive_two_access_subspace_already_dwarfs_the_templates():
    """Even the 2-access-per-thread slice of the naive four-location space is
    an order of magnitude larger than the 124-test template suite (2502
    tests); the full 3-access space (measured once, reported in
    EXPERIMENTS.md) exceeds the paper's "approximately a million" estimate."""
    shapes_estimate = count_naive_tests(
        NaiveEnumerationConfig(max_locations=4, max_accesses_per_thread=2)
    )
    assert shapes_estimate > 10 * 124
