"""Shared fixtures for the benchmark suite.

Each benchmark module regenerates one table or figure of the paper (see
DESIGN.md's experiment index and EXPERIMENTS.md for the measured results).
Suites and model spaces are session-scoped so their construction cost is not
charged to every benchmark.
"""

from __future__ import annotations

import pytest

from repro.core.parametric import model_space
from repro.generation.suite import no_dependency_suite, standard_suite


@pytest.fixture(scope="session")
def suite_with_dependencies():
    """The paper's 230-instantiation template suite."""
    return standard_suite()


@pytest.fixture(scope="session")
def suite_without_dependencies():
    """The paper's 124-instantiation template suite."""
    return no_dependency_suite()


@pytest.fixture(scope="session")
def models_36():
    """The dependency-free model space of Figure 4."""
    return model_space(include_data_dependencies=False)


@pytest.fixture(scope="session")
def models_90():
    """The full 90-model space of Section 4.2."""
    return model_space(include_data_dependencies=True)
