"""Experiment E1 (Figure 1): Test A under TSO and SC.

The paper uses Test A to illustrate store forwarding: the outcome is allowed
under TSO (no happens-before edge from ``Write Y <- 2`` to ``Read Y -> r2``)
but forbidden under SC and IBM 370.  The benchmark measures the cost of a
single admissibility check with both backends.
"""

import pytest

from repro.checker.explicit import ExplicitChecker
from repro.checker.sat_checker import SatChecker
from repro.core.catalog import IBM370, SC, TSO
from repro.generation.named_tests import TEST_A

EXPLICIT = ExplicitChecker()
SAT = SatChecker()


@pytest.mark.benchmark(group="fig1-test-a")
def test_fig1_test_a_allowed_under_tso_explicit(benchmark):
    result = benchmark(lambda: EXPLICIT.check(TEST_A, TSO))
    assert result.allowed


@pytest.mark.benchmark(group="fig1-test-a")
def test_fig1_test_a_forbidden_under_sc_explicit(benchmark):
    result = benchmark(lambda: EXPLICIT.check(TEST_A, SC))
    assert not result.allowed


@pytest.mark.benchmark(group="fig1-test-a")
def test_fig1_test_a_forbidden_under_ibm370_explicit(benchmark):
    result = benchmark(lambda: EXPLICIT.check(TEST_A, IBM370))
    assert not result.allowed


@pytest.mark.benchmark(group="fig1-test-a")
def test_fig1_test_a_allowed_under_tso_sat(benchmark):
    result = benchmark(lambda: SAT.check(TEST_A, TSO))
    assert result.allowed


@pytest.mark.benchmark(group="fig1-test-a")
def test_fig1_test_a_forbidden_under_sc_sat(benchmark):
    result = benchmark(lambda: SAT.check(TEST_A, SC))
    assert not result.allowed
