"""One-command refresh of the CI perf-gate baseline.

Runs the same fast benchmark subset CI runs and writes the reduced
baseline document the gate (``check_regression.py``) compares against::

    python benchmarks/update_baseline.py                  # refresh the committed baseline
    python benchmarks/update_baseline.py --output B.json  # write elsewhere (e.g. CI's fresh run)
    python benchmarks/update_baseline.py --from-json BENCH_explore.json
                                                          # adopt an existing result (e.g. a CI artifact)

Prefer ``--from-json`` with an artifact downloaded from the CI runner
class that enforces the gate: medians measured on your laptop encode your
laptop's speed, not CI's (see ``docs/ci.md``).
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import List, Optional

from check_regression import DEFAULT_BASELINE, load_medians

#: The fast benchmark subset CI runs on every push (one round each).
BENCH_MODULES = (
    "benchmarks/bench_fig1_test_a.py",
    "benchmarks/bench_fig3_nine_tests.py",
    "benchmarks/bench_sat_vs_explicit.py",
    "benchmarks/bench_engine_incremental.py",
    "benchmarks/bench_kernel_explicit.py",
    "benchmarks/bench_kernel_native.py",
    "benchmarks/bench_enumeration_pipeline.py",
    "benchmarks/bench_partition_adaptive.py",
    "benchmarks/bench_model_compile.py",
    "benchmarks/bench_synthesis.py",
    "benchmarks/bench_serve_load.py",
)


def run_benchmarks(json_path: Path) -> None:
    """Run the CI benchmark subset, writing pytest-benchmark JSON."""
    repo_root = Path(__file__).parent.parent
    command = [
        sys.executable,
        "-m",
        "pytest",
        "-x",
        "-q",
        *BENCH_MODULES,
        "--benchmark-json",
        str(json_path),
    ]
    subprocess.run(command, cwd=repo_root, check=True)


def reduce_to_baseline(raw_jsons: List[Path]) -> dict:
    """Reduce pytest-benchmark JSON documents to the baseline schema.

    With several documents (``--runs N``) each benchmark's baseline is the
    median of its per-run medians, which damps scheduler noise.
    """
    per_run = [load_medians(path) for path in raw_jsons]
    names = sorted(set().union(*per_run))
    benchmarks = {}
    for name in names:
        medians = sorted(run[name] for run in per_run if name in run)
        benchmarks[name] = {"median": medians[len(medians) // 2]}
    return {
        "schema": "repro/bench_baseline",
        "schema_version": 1,
        "benchmarks": benchmarks,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="Refresh the CI perf-gate baseline.")
    parser.add_argument(
        "--from-json",
        metavar="FILE",
        help="adopt an existing pytest-benchmark JSON instead of running the suite",
    )
    parser.add_argument(
        "--output",
        default=str(DEFAULT_BASELINE),
        help=f"where to write the baseline (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--raw",
        action="store_true",
        help="write the raw pytest-benchmark JSON instead of the reduced baseline "
        "schema (for CI steps that both gate and upload the artifact)",
    )
    parser.add_argument(
        "--runs",
        type=int,
        default=1,
        metavar="N",
        help="run the suite N times and baseline the per-benchmark median of "
        "the N medians (steadier baselines on noisy machines)",
    )
    args = parser.parse_args(argv)
    if args.runs < 1:
        parser.error("--runs must be >= 1")
    if args.raw and args.runs != 1:
        parser.error("--raw makes no sense with --runs > 1")

    if args.from_json:
        raw_paths = [Path(args.from_json)]
    else:
        raw_paths = []
        for _run in range(args.runs):
            raw_path = Path(tempfile.mkstemp(suffix=".json")[1])
            run_benchmarks(raw_path)
            raw_paths.append(raw_path)

    output = Path(args.output)
    output.parent.mkdir(parents=True, exist_ok=True)
    if args.raw:
        output.write_text(raw_paths[0].read_text())
    else:
        output.write_text(json.dumps(reduce_to_baseline(raw_paths), indent=2) + "\n")
    print(f"wrote {output} ({len(load_medians(output))} benchmarks)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
