"""Kernel-backend micro-benchmarks: bigint vs word-array vs C extension.

The native layer (:mod:`repro.native`) reimplements the three hot loops of
the explicit checker — incremental reachability, mask-program evaluation,
and the full backtracking search — over fixed-width word arrays, with a C
extension behind the same :class:`~repro.native.backend.KernelBackend`
interface.  This module measures each loop per backend, records the backend
name in ``extra_info``, and asserts bit-identical results along the way, so
the perf gate sees kernel-level regressions separately from engine-level
ones.

Backends are discovered at import: the native benchmarks run only when the
C extension is built (``python setup.py build_ext --inplace``), so the
module stays green on pure-Python checkouts.
"""

import random

import pytest

from repro.checker.kernel import IndexedExecution, ReachabilityKernel
from repro.compile import compile_model
from repro.engine import CheckEngine
from repro.generation.named_tests import L_TESTS, TEST_A
from repro.native.backend import native_available, resolve_kernel
from repro.native.words import WordReachability

ALL_TESTS = [TEST_A] + list(L_TESTS)

#: (name, kernel) for every backend available in this environment.
KERNELS = [("bigint", resolve_kernel("bigint")), ("python", resolve_kernel("python"))]
if native_available():
    KERNELS.append(("native", resolve_kernel("native")))

KERNEL_IDS = [name for name, _ in KERNELS]


def _random_edges(n, count, seed=20110605):
    rng = random.Random(seed)
    return [(rng.randrange(n), rng.randrange(n)) for _ in range(count)]


# ----------------------------------------------------------------------
# reachability: edge insertion + undo per backend
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="kernel-reachability")
@pytest.mark.parametrize("backend", KERNEL_IDS)
def test_reachability_add_undo(benchmark, backend):
    n = 24
    edges = _random_edges(n, 600)

    if backend == "bigint":

        def run():
            kernel = ReachabilityKernel(n)
            inserted = 0
            for u, v in edges:
                mark = kernel.mark()
                if kernel.add_edge(u, v):
                    inserted += 1
                    kernel.undo_to(mark)
            return inserted

    elif backend == "python":

        def run():
            kernel = WordReachability(n)
            inserted = 0
            for u, v in edges:
                mark = kernel.mark()
                if kernel.add_edge(u, v):
                    inserted += 1
                    kernel.undo_to(mark)
            return inserted

    else:
        from repro.native import _kernelmod

        flat = b"".join(
            u.to_bytes(4, "little") + v.to_bytes(4, "little") for u, v in edges
        )

        def run():
            # bench_reach inserts every edge, checksums, and undoes to zero.
            return _kernelmod.bench_reach(n, flat, 1)

    result = benchmark.pedantic(run, rounds=5, iterations=1)
    assert result  # some edges inserted / nonzero checksum
    benchmark.extra_info["kernel_backend"] = backend
    benchmark.extra_info["edges"] = len(edges)


# ----------------------------------------------------------------------
# mask-program evaluation per backend
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="kernel-mask-eval")
@pytest.mark.parametrize("backend", KERNEL_IDS)
def test_mask_program_evaluation(benchmark, backend, models_36):
    name, kernel = next(pair for pair in KERNELS if pair[0] == backend)
    compiled = [compile_model(model) for model in models_36]
    executions = [test.execution() for test in ALL_TESTS]
    reference_kernel = resolve_kernel("bigint")
    expected = [
        reference_kernel.po_pair_mask(IndexedExecution(execution), entry)
        for execution in executions
        for entry in compiled
    ]

    def run():
        masks = []
        for execution in executions:
            # Fresh per round so the per-node memo doesn't hide the work.
            indexed = IndexedExecution(execution)
            for entry in compiled:
                masks.append(kernel.po_pair_mask(indexed, entry))
        return masks

    masks = benchmark.pedantic(run, rounds=3, iterations=1)
    assert masks == expected  # bit-identical to the bigint lowering
    benchmark.extra_info["kernel_backend"] = name
    benchmark.extra_info["mask_evaluations"] = len(masks)


# ----------------------------------------------------------------------
# full search: the verdict matrix per backend
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="kernel-search")
@pytest.mark.parametrize("backend", KERNEL_IDS)
def test_full_search_matrix(benchmark, backend, models_36):
    expected = CheckEngine(kernel="bigint").verdict_matrix(models_36, ALL_TESTS)

    def run():
        return CheckEngine(kernel=backend).verdict_matrix(models_36, ALL_TESTS)

    matrix = benchmark.pedantic(run, rounds=3, iterations=1)
    assert matrix == expected
    benchmark.extra_info["kernel_backend"] = backend


def test_engine_reports_the_benchmarked_backend(models_36):
    for name, _ in KERNELS:
        engine = CheckEngine(kernel=name)
        engine.check(TEST_A, models_36[0])
        assert engine.stats.kernel_backend == name
        searches = engine.stats.native_searches + engine.stats.fallback_searches
        assert searches == 1
