"""Synthesis strategies over growing observation counts.

Inverting the checker: given a row of observed verdicts from the 90-model
space, how fast do the two synthesis strategies recover the consistent
set?  The enumeration strategy streams cache-warm verdict columns
(``CheckEngine.check_column``); the SAT strategy answers each observation
with one incremental solve per *distinct* po-pair mask, so models that
force the same program-order edges share a solver call.  Both run on a
session-warm engine — the realistic serving shape, where explore/compare
traffic has already built the per-test contexts — and the benchmark
asserts they return identical results at every size.
"""

import dataclasses

import pytest

from repro.core.parametric import parametric_model
from repro.engine import CheckEngine
from repro.generation.named_tests import L_TESTS
from repro.synth import SynthesisEngine

TARGET = "M4044"
OBSERVATION_COUNTS = (4, 16, 64)


@pytest.fixture(scope="module")
def synthesis(models_90, suite_with_dependencies):
    """A warm synthesis engine plus the target model's full verdict row."""
    engine = CheckEngine()
    synth = SynthesisEngine(
        models_90,
        list(L_TESTS),
        engine=engine,
        preferred_tests=L_TESTS,
        space="deps",
    )
    target = parametric_model(TARGET)
    suite = list(suite_with_dependencies.tests()) + list(L_TESTS)
    row = [(test, engine.check(test, target)) for test in suite]
    # Warm every per-test context the benchmark will touch, for both
    # strategies, so the timings measure synthesis rather than first-visit
    # candidate-space construction.
    for test, _ in row:
        engine.check_column(test, synth.models, retain=True)
        synth._sat_column(test)
    return synth, row


def _strip(result):
    return dataclasses.replace(result, backend="", stats=None)


@pytest.mark.parametrize("count", OBSERVATION_COUNTS)
@pytest.mark.benchmark(group="synthesis")
def test_synthesize_enum(benchmark, synthesis, count):
    synth, row = synthesis
    result = benchmark.pedantic(
        lambda: synth.synthesize(row[:count], backend="enum"),
        rounds=3,
        iterations=1,
    )
    assert TARGET in result.consistent_models


@pytest.mark.parametrize("count", OBSERVATION_COUNTS)
@pytest.mark.benchmark(group="synthesis")
def test_synthesize_sat(benchmark, synthesis, count):
    synth, row = synthesis
    result = benchmark.pedantic(
        lambda: synth.synthesize(row[:count], backend="sat"),
        rounds=3,
        iterations=1,
    )
    assert TARGET in result.consistent_models


def test_strategies_agree_at_every_size(synthesis):
    synth, row = synthesis
    for count in OBSERVATION_COUNTS:
        enum = synth.synthesize(row[:count], backend="enum")
        sat = synth.synthesize(row[:count], backend="sat")
        assert _strip(enum) == _strip(sat), f"strategies diverge at {count}"


def test_sat_strategy_groups_models_by_mask(synthesis):
    synth, row = synthesis
    result = synth.synthesize(row[:16], backend="sat")
    stats = result.stats
    assert stats.synth_solver_calls + stats.synth_group_hits == 16 * 90
    # Mask grouping must be doing real work on this space.
    assert stats.synth_group_hits > stats.synth_solver_calls
