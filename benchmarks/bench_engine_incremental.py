"""Engine modes on the 36-model exploration workload.

The seed dispatched one independent admissibility check per (model, test)
pair — on the SAT backend that meant building and solving a fresh CNF with a
fresh solver for every one of the ~3,500 checks.  The engine evaluates each
test's execution once, shares the candidate spaces across all models and, on
the SAT backend, answers every model from one persistent incremental solver
per test via assumptions.  This benchmark compares the per-check legacy SAT
pipeline against both engine modes on the same workload and checks they all
produce the same verdict matrix.
"""

import pytest

from repro.checker.sat_checker import SatChecker
from repro.engine import CheckEngine
from repro.engine.strategies import LegacyCheckerStrategy
from repro.generation.named_tests import L_TESTS, TEST_A

ALL_TESTS = [TEST_A] + list(L_TESTS)


@pytest.fixture(scope="module")
def expected_matrix(models_36):
    return CheckEngine("explicit").verdict_matrix(models_36, ALL_TESTS)


@pytest.mark.benchmark(group="engine-modes")
def test_engine_explicit_matrix(benchmark, models_36, expected_matrix):
    matrix = benchmark.pedantic(
        lambda: CheckEngine("explicit").verdict_matrix(models_36, ALL_TESTS),
        rounds=3,
        iterations=1,
    )
    assert matrix == expected_matrix


@pytest.mark.benchmark(group="engine-modes")
def test_engine_incremental_sat_matrix(benchmark, models_36, expected_matrix):
    matrix = benchmark.pedantic(
        lambda: CheckEngine("sat").verdict_matrix(models_36, ALL_TESTS),
        rounds=3,
        iterations=1,
    )
    assert matrix == expected_matrix


@pytest.mark.benchmark(group="engine-modes")
def test_legacy_per_check_sat_matrix(benchmark, models_36, expected_matrix):
    """The seed's behaviour: fresh CNF + fresh solver per (model, test)."""

    def run():
        engine = CheckEngine(LegacyCheckerStrategy(SatChecker()))
        return engine.verdict_matrix(models_36, ALL_TESTS)

    matrix = benchmark.pedantic(run, rounds=3, iterations=1)
    assert matrix == expected_matrix


def test_incremental_sat_reuses_contexts(models_36):
    engine = CheckEngine("sat")
    engine.verdict_matrix(models_36, ALL_TESTS)
    assert engine.stats.executions_evaluated == len(ALL_TESTS)
    assert engine.stats.solver_calls == len(models_36) * len(ALL_TESTS)
