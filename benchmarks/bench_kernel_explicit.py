"""Bitset kernel vs product enumeration on the explicit backend.

PR 2 replaced the explicit checker's brute-force read-from × coherence
product (one fresh digraph acyclicity check per complete combination) with
the pruned backtracking search of :mod:`repro.checker.kernel`.  The old
semantics survives as the ``"enumeration"`` engine backend; this benchmark
runs both over the same verdict-matrix workload and checks they agree
bit-for-bit, so the speedup and the cross-validation are measured together.
"""

import pytest

from repro.engine import CheckEngine
from repro.generation.named_tests import L_TESTS, TEST_A

ALL_TESTS = [TEST_A] + list(L_TESTS)


@pytest.fixture(scope="module")
def expected_matrix(models_36):
    return CheckEngine("enumeration").verdict_matrix(models_36, ALL_TESTS)


@pytest.mark.benchmark(group="kernel-vs-enumeration")
def test_kernel_backtracking_matrix(benchmark, models_36, expected_matrix):
    matrix = benchmark.pedantic(
        lambda: CheckEngine("explicit").verdict_matrix(models_36, ALL_TESTS),
        rounds=3,
        iterations=1,
    )
    assert matrix == expected_matrix


@pytest.mark.benchmark(group="kernel-vs-enumeration")
def test_enumeration_oracle_matrix(benchmark, models_36, expected_matrix):
    matrix = benchmark.pedantic(
        lambda: CheckEngine("enumeration").verdict_matrix(models_36, ALL_TESTS),
        rounds=3,
        iterations=1,
    )
    assert matrix == expected_matrix


def test_kernel_prunes_reuse_contexts(models_36):
    engine = CheckEngine("explicit")
    engine.verdict_matrix(models_36, ALL_TESTS)
    assert engine.stats.executions_evaluated == len(ALL_TESTS)
    assert engine.stats.candidate_spaces_built == len(ALL_TESTS)
