"""The CI perf-regression gate.

Compares a fresh pytest-benchmark JSON result against the committed
baseline (``benchmarks/baselines/BENCH_baseline.json``) and fails when any
benchmark's median slowed down by more than the tolerance (25% by
default)::

    python benchmarks/check_regression.py BENCH_explore.json
    python benchmarks/check_regression.py BENCH_explore.json --tolerance 40

Exit codes: 0 = within tolerance, 1 = regression (or a baselined benchmark
disappeared — refresh the baseline consciously when retiring one), 2 =
usage error.  Benchmarks not yet in the baseline pass with a note; run
``python benchmarks/update_baseline.py`` to adopt them.

By default ratios are *calibrated*: divided by the suite-wide median
fresh/baseline ratio, so a uniformly slower (or faster) machine does not
trip — or mask — the gate; only benchmarks that regressed relative to the
rest of the suite fail, which is the signature of a code change.  Pass
``--no-calibrate`` to gate on absolute medians.

The baseline is a reduced schema (one median per benchmark ``fullname``)
so committed refreshes produce reviewable diffs; see ``docs/ci.md`` for
the refresh workflow and the cross-machine caveats.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

#: Default committed baseline location, relative to this file.
DEFAULT_BASELINE = Path(__file__).parent / "baselines" / "BENCH_baseline.json"

#: Fail when a median exceeds baseline * (1 + TOLERANCE).
DEFAULT_TOLERANCE_PERCENT = 25.0


def normalize_name(fullname: str) -> str:
    """Strip the machine-specific path prefix from a benchmark fullname.

    pytest-benchmark records ``<rootdir-relative-or-absolute path>::test``;
    checkouts live at different paths on different runners, so the gate
    keys benchmarks from the ``benchmarks/`` component onward.
    """
    marker = "benchmarks/"
    position = fullname.find(marker)
    return fullname[position:] if position > 0 else fullname


def load_medians(path: Path) -> Dict[str, float]:
    """Extract ``name -> median seconds`` from either JSON schema.

    Accepts both the raw pytest-benchmark output and the reduced baseline
    schema written by ``update_baseline.py``; names are normalized with
    :func:`normalize_name` either way.
    """
    with open(path) as handle:
        document = json.load(handle)
    if document.get("schema") == "repro/bench_baseline":
        return {
            normalize_name(name): entry["median"]
            for name, entry in document["benchmarks"].items()
        }
    medians: Dict[str, float] = {}
    for bench in document.get("benchmarks", []):
        medians[normalize_name(bench["fullname"])] = bench["stats"]["median"]
    return medians


def speed_factor(baseline: Dict[str, float], fresh: Dict[str, float]) -> float:
    """The machine-speed factor: the median fresh/baseline ratio.

    A baseline measured on one machine (a laptop, last month's CI runner
    generation) meets fresh numbers from another; whatever slows *every*
    benchmark by the same factor is machine speed, not a regression.  The
    median ratio estimates that factor robustly — an actual regression in a
    few benchmarks barely moves it.
    """
    ratios = sorted(
        fresh[name] / baseline[name]
        for name in baseline
        if name in fresh and baseline[name] > 0
    )
    if not ratios:
        return 1.0
    return ratios[len(ratios) // 2]


def compare(
    baseline: Dict[str, float],
    fresh: Dict[str, float],
    tolerance_percent: float = DEFAULT_TOLERANCE_PERCENT,
    calibrate: bool = True,
) -> Tuple[List[str], List[str]]:
    """Return (failures, notes) comparing fresh medians to the baseline.

    With ``calibrate=True`` (the default) each ratio is divided by the
    suite-wide :func:`speed_factor` first, so only benchmarks that
    regressed *relative to the rest of the suite* fail — the signature of a
    code change rather than a slower machine.  ``calibrate=False`` gates on
    absolute medians.
    """
    failures: List[str] = []
    notes: List[str] = []
    limit = 1.0 + tolerance_percent / 100.0
    factor = speed_factor(baseline, fresh) if calibrate else 1.0
    if calibrate:
        notes.append(f"machine-speed calibration factor: x{factor:.2f}")
    for name in sorted(baseline):
        if name not in fresh:
            failures.append(
                f"{name}: present in the baseline but missing from the fresh run "
                "(refresh the baseline if it was retired on purpose)"
            )
            continue
        reference = baseline[name]
        measured = fresh[name]
        if reference <= 0:
            notes.append(f"{name}: baseline median is {reference}; skipped")
            continue
        ratio = measured / reference / factor
        verdict = "OK" if ratio <= limit else "REGRESSION"
        line = (
            f"{name}: baseline {reference * 1000:.2f}ms -> fresh {measured * 1000:.2f}ms "
            f"(x{ratio:.2f} calibrated, limit x{limit:.2f}) {verdict}"
        )
        if ratio > limit:
            failures.append(line)
        else:
            notes.append(line)
    for name in sorted(set(fresh) - set(baseline)):
        notes.append(f"{name}: new benchmark, not in the baseline yet (passes)")
    return failures, notes


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when any benchmark median regressed past the tolerance."
    )
    parser.add_argument("fresh", help="fresh pytest-benchmark JSON (e.g. BENCH_explore.json)")
    parser.add_argument(
        "--baseline",
        default=str(DEFAULT_BASELINE),
        help=f"baseline JSON (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE_PERCENT,
        metavar="PERCENT",
        help=f"allowed median slowdown in percent (default: {DEFAULT_TOLERANCE_PERCENT})",
    )
    parser.add_argument(
        "--no-calibrate",
        action="store_true",
        help="gate on absolute medians instead of dividing out the suite-wide "
        "machine-speed factor",
    )
    args = parser.parse_args(argv)

    try:
        baseline = load_medians(Path(args.baseline))
        fresh = load_medians(Path(args.fresh))
    except (OSError, ValueError, KeyError) as error:
        print(f"check_regression: cannot load inputs: {error}", file=sys.stderr)
        return 2
    if not baseline:
        print(f"check_regression: baseline {args.baseline} has no benchmarks", file=sys.stderr)
        return 2

    failures, notes = compare(baseline, fresh, args.tolerance, calibrate=not args.no_calibrate)
    for note in notes:
        print(note)
    if failures:
        print(f"\n{len(failures)} perf-gate failure(s):", file=sys.stderr)
        for failure in failures:
            print(f"  FAIL {failure}", file=sys.stderr)
        return 1
    print(f"\nperf gate OK: {len(baseline)} benchmark(s) within {args.tolerance:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
