"""Experiment E6 (Section 4.2): pairwise comparison of all 90 models.

The paper reports that each pairwise comparison takes a few seconds and the
whole 90-model exploration completes in 20 minutes (2011 hardware, MiniSat).
This benchmark reproduces the exploration with the explicit backend, checks
the headline findings — eight equivalent pairs, all differing only in the
same-address write->read choice, with SC the unique strongest model — and
measures the wall-clock cost.
"""

import pytest

from repro.comparison.compare import ModelComparator
from repro.comparison.exploration import explore_models
from repro.core.catalog import TSO
from repro.core.parametric import parametric_model
from repro.generation.named_tests import L_TESTS


@pytest.fixture(scope="module")
def exploration_90(models_90, suite_with_dependencies):
    return explore_models(
        models_90, suite_with_dependencies.tests(), preferred_tests=L_TESTS
    )


@pytest.mark.benchmark(group="table-90-models")
def test_table_explore_all_90_models(benchmark, models_90, suite_with_dependencies):
    result = benchmark.pedantic(
        lambda: explore_models(
            models_90, suite_with_dependencies.tests(), preferred_tests=L_TESTS
        ),
        rounds=1,
        iterations=1,
    )
    assert len(result.models) == 90
    assert len(result.equivalent_pairs()) == 8
    assert result.strongest_models() == ["M4444"]


def test_table_exactly_eight_equivalent_pairs(exploration_90):
    """Section 4.2: "Out of the 90 different models, eight pairs of models are equivalent"."""
    pairs = exploration_90.equivalent_pairs()
    assert len(pairs) == 8


def test_table_equivalent_pairs_differ_only_in_same_address_write_read(exploration_90):
    for first, second in exploration_90.equivalent_pairs():
        assert first[1] == second[1]  # ww
        assert first[3:] == second[3:]  # rw, rr
        assert {first[2], second[2]} == {"0", "1"}  # wr: always vs different-address


def test_table_sc_is_strongest_and_rmo_is_weakest(exploration_90):
    assert exploration_90.strongest_models() == ["M4444"]
    assert exploration_90.weakest_models() == ["M1010"]


@pytest.mark.benchmark(group="table-90-models")
def test_table_single_pairwise_comparison(benchmark, suite_with_dependencies):
    """The paper: "The comparison of each pair of models was done in a few seconds"."""
    comparator = ModelComparator(suite_with_dependencies.tests())
    first = parametric_model("M4044")
    second = parametric_model("M4144")

    def compare_fresh_pair():
        fresh = ModelComparator(suite_with_dependencies.tests())
        return fresh.compare(first, second)

    result = benchmark.pedantic(compare_fresh_pair, rounds=1, iterations=1)
    assert not result.equivalent
    # cached comparator: later comparisons reuse verdict vectors
    comparator.compare(first, second)
    assert comparator.compare(first, TSO).equivalent
