"""Experiment E7 (Section 4.1): SAT-based admissibility checking.

The paper's tool calls MiniSat per (test, model) query and completes a model
comparison "in a reasonable time (seconds)".  This benchmark compares our
SAT backend (with and without CNF preprocessing) against the explicit
enumeration backend on the nine contrasting tests, and times a whole
model-vs-model comparison through the SAT backend.
"""

import pytest

from repro.checker.explicit import ExplicitChecker
from repro.checker.sat_checker import SatChecker
from repro.comparison.compare import ModelComparator
from repro.core.catalog import IBM370, SC, TSO
from repro.generation.named_tests import L_TESTS, TEST_A

ALL_TESTS = [TEST_A] + L_TESTS
MODELS = (SC, TSO, IBM370)


def _sweep(checker):
    return tuple(
        checker.check(test, model).allowed for test in ALL_TESTS for model in MODELS
    )


@pytest.fixture(scope="module")
def expected_verdicts():
    return _sweep(ExplicitChecker())


@pytest.mark.benchmark(group="sat-vs-explicit")
def test_backend_explicit_sweep(benchmark, expected_verdicts):
    verdicts = benchmark(lambda: _sweep(ExplicitChecker()))
    assert verdicts == expected_verdicts


@pytest.mark.benchmark(group="sat-vs-explicit")
def test_backend_sat_sweep(benchmark, expected_verdicts):
    verdicts = benchmark.pedantic(lambda: _sweep(SatChecker()), rounds=3, iterations=1)
    assert verdicts == expected_verdicts


@pytest.mark.benchmark(group="sat-vs-explicit")
def test_backend_sat_with_preprocessing_sweep(benchmark, expected_verdicts):
    verdicts = benchmark.pedantic(
        lambda: _sweep(SatChecker(use_preprocessing=True)), rounds=3, iterations=1
    )
    assert verdicts == expected_verdicts


@pytest.mark.benchmark(group="sat-vs-explicit")
def test_backend_sat_model_comparison_runs_in_seconds(benchmark, suite_without_dependencies):
    """One full TSO-vs-IBM370 comparison over the 88 feasible dependency-free tests."""
    tests = suite_without_dependencies.tests()

    def compare():
        comparator = ModelComparator(tests, checker=SatChecker())
        return comparator.compare(TSO, IBM370)

    result = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert not result.equivalent
