"""CI load smoke for the concurrent serve transport.  Stdlib only.

Exercises the full serving stack the way the paper's batch tooling would:

1. start ``repro serve --port --cache-dir --metrics-port`` as a subprocess
   and poll-connect until it accepts;
2. run concurrent TCP clients, each interleaving cold (miss) and repeated
   (hit) check requests;
3. assert every response matches a fresh in-process single-threaded
   session bit-for-bit (concurrency and caching must never change a
   verdict);
4. scrape ``/metrics`` and assert the verdict cache reported nonzero hits;
5. SIGTERM the server and assert it drains to exit code 0;
6. restart it on the same ``--cache-dir`` and assert the persistent tier
   reloaded (``cache_open`` log event with ``loaded > 0`` and a warm
   first response).

Usage::

    PYTHONPATH=src python scripts/serve_load_smoke.py [--clients N] [--log FILE]

Exit status 0 on success; any assertion failure raises and exits nonzero.
The server's structured stderr log is written to ``--log`` (default
``serve_load.log``) so CI can attach it to failures.
"""

import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request

#: The hit/miss mix: each client walks every pair once (misses for the
#: first client to arrive, hits after) and then repeats the whole walk
#: (hits for everyone).
TESTS = ("A", "L1", "L2", "L3", "L5", "L7")
MODELS = ("SC", "TSO", "PSO", "RMO", "Alpha")
PAIRS = tuple((test, model) for test in TESTS for model in MODELS)
REPEATS = 3


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def start_server(port: int, metrics_port: int, cache_dir: str, log_path: str):
    log_file = open(log_path, "ab")
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--port",
            str(port),
            "--metrics-port",
            str(metrics_port),
            "--cache-dir",
            cache_dir,
        ],
        stderr=log_file,
        env=dict(os.environ, PYTHONPATH="src"),
    )
    log_file.close()  # the child holds its own descriptor
    deadline = time.time() + 60
    while True:
        try:
            socket.create_connection(("127.0.0.1", port), timeout=1).close()
            return process
        except OSError:
            if process.poll() is not None:
                raise SystemExit(
                    f"server exited {process.returncode} before accepting; see log"
                )
            if time.time() > deadline:
                process.kill()
                raise SystemExit("server did not accept a connection within 60s")
            time.sleep(0.05)


def run_client(port: int, out: list, index: int) -> None:
    lines = [
        json.dumps({"op": "check", "test": test, "model": model})
        for _ in range(REPEATS)
        for test, model in PAIRS
    ]
    payload = ("\n".join(lines) + "\n").encode("utf-8")
    with socket.create_connection(("127.0.0.1", port), timeout=120) as connection:
        connection.sendall(payload)
        chunks, newlines = [], 0
        while newlines < len(lines):
            chunk = connection.recv(1 << 16)
            if not chunk:
                break
            chunks.append(chunk)
            newlines += chunk.count(b"\n")
    out[index] = [json.loads(line) for line in b"".join(chunks).decode().splitlines()]


def expected_verdicts() -> dict:
    """Ground truth from a fresh single-threaded in-process session."""
    sys.path.insert(0, "src")
    from repro.api.requests import CheckRequest
    from repro.api.session import Session

    session = Session()
    return {
        (test, model): session.run(CheckRequest(test=test, model=model)).allowed
        for test, model in PAIRS
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=6)
    parser.add_argument("--log", default="serve_load.log")
    args = parser.parse_args()
    assert args.clients >= 4, "the smoke must exercise real concurrency"

    cache_dir = tempfile.mkdtemp(prefix="serve-load-cache-")
    port, metrics_port = free_port(), free_port()
    process = start_server(port, metrics_port, cache_dir, args.log)

    # -- concurrent hit/miss load, verified against ground truth --------
    results = [None] * args.clients
    threads = [
        threading.Thread(target=run_client, args=(port, results, i))
        for i in range(args.clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    truth = expected_verdicts()
    plan = list(PAIRS) * REPEATS
    total = 0
    for responses in results:
        assert responses is not None and len(responses) == len(plan), "lost responses"
        for (test, model), response in zip(plan, responses):
            assert response["ok"], response
            result = response["result"]
            assert result["test_name"] == test and result["model_name"] == model
            assert result["allowed"] == truth[(test, model)], (test, model, result)
            total += 1
    print(f"load OK: {args.clients} clients x {len(plan)} requests = {total} verified")

    # -- the metrics endpoint must show the cache working ---------------
    scrape = urllib.request.urlopen(
        f"http://127.0.0.1:{metrics_port}/metrics", timeout=30
    ).read().decode()
    metrics = {}
    for line in scrape.splitlines():
        if line.startswith("#") or "{" in line:
            continue
        name, _, value = line.partition(" ")
        metrics[name] = float(value)
    assert metrics.get("repro_cache_enabled") == 1, "cache not enabled"
    assert metrics.get("repro_cache_hits_total", 0) > 0, "no cache hits under repeat load"
    assert metrics.get("repro_cache_persisted_written_total", 0) > 0, "nothing persisted"
    served = sum(
        count
        for line in scrape.splitlines()
        if line.startswith("repro_serve_requests_total{")
        for count in [float(line.rsplit(" ", 1)[1])]
    )
    assert served >= total, (served, total)
    print(
        "metrics OK: hits=%d persisted=%d served=%d"
        % (
            metrics["repro_cache_hits_total"],
            metrics["repro_cache_persisted_written_total"],
            served,
        )
    )

    # -- SIGTERM drains to exit 0 ---------------------------------------
    process.send_signal(signal.SIGTERM)
    returncode = process.wait(timeout=120)
    assert returncode == 0, f"drain exited {returncode}"
    print("drain OK: exit 0 on SIGTERM")

    # -- restart on the same cache dir reloads the persistent tier ------
    process = start_server(port, metrics_port, cache_dir, args.log)
    try:
        results = [None]
        run_client(port, results, 0)
        assert all(response["ok"] for response in results[0])
    finally:
        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=120) == 0
    events = [json.loads(line) for line in open(args.log)]
    opened = [event for event in events if event.get("event") == "cache_open"]
    assert len(opened) == 2, [event.get("event") for event in events]
    assert opened[0]["loaded"] == 0, opened[0]
    assert opened[1]["loaded"] > 0, opened[1]
    print(f"reload OK: restart recovered {opened[1]['loaded']} cached verdicts")
    return 0


if __name__ == "__main__":
    sys.exit(main())
